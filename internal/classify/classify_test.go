package classify

import (
	"strings"
	"testing"

	"github.com/incompletedb/incompletedb/internal/cq"
)

func classifyOrDie(t *testing.T, v Variant, q string) Result {
	t.Helper()
	r, err := Classify(v, cq.MustParseBCQ(q))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestVariantStrings(t *testing.T) {
	cases := map[Variant]string{
		{Valuations, false, false}: "#Val(q)",
		{Valuations, true, true}:   "#Val^u_Cd(q)",
		{Completions, false, true}: "#Comp^u(q)",
		{Completions, true, false}: "#Comp_Cd(q)",
	}
	for v, want := range cases {
		if v.String() != want {
			t.Errorf("%#v -> %q, want %q", v, v.String(), want)
		}
	}
}

// TestTable1Column1 checks the non-uniform naïve #Val column.
func TestTable1Column1(t *testing.T) {
	v := Variant{Valuations, false, false}
	if r := classifyOrDie(t, v, "R(x, x)"); r.Complexity != SharpPComplete {
		t.Errorf("R(x,x): %v", r.Complexity)
	}
	if r := classifyOrDie(t, v, "R(x) ∧ S(x)"); r.Complexity != SharpPComplete {
		t.Errorf("R(x)∧S(x): %v", r.Complexity)
	}
	if r := classifyOrDie(t, v, "R(x, y) ∧ S(z)"); r.Complexity != FP {
		t.Errorf("single-occurrence query should be FP: %v", r.Complexity)
	}
}

// TestTable1Column2 checks the uniform naïve #Val column.
func TestTable1Column2(t *testing.T) {
	v := Variant{Valuations, false, true}
	for _, hard := range []string{"R(x, x)", "R(x) ∧ S(x, y) ∧ T(y)", "R(x, y) ∧ S(x, y)"} {
		if r := classifyOrDie(t, v, hard); r.Complexity != SharpPComplete {
			t.Errorf("%s should be #P-complete: %v", hard, r.Complexity)
		}
	}
	// R(x) ∧ S(x) is tractable in the uniform setting (Example 3.10).
	if r := classifyOrDie(t, v, "R(x) ∧ S(x)"); r.Complexity != FP {
		t.Errorf("R(x)∧S(x) uniform should be FP: %v", r.Complexity)
	}
	if r := classifyOrDie(t, v, "R(x, y) ∧ S(y)"); r.Complexity != FP {
		t.Errorf("R(x,y)∧S(y) uniform should be FP: %v", r.Complexity)
	}
}

// TestTable1ValCodd checks the Codd #Val rows.
func TestTable1ValCodd(t *testing.T) {
	v := Variant{Valuations, true, false}
	if r := classifyOrDie(t, v, "R(x) ∧ S(x)"); r.Complexity != SharpPComplete {
		t.Errorf("R(x)∧S(x) Codd: %v", r.Complexity)
	}
	// R(x,x) is tractable on Codd tables (Theorem 3.7).
	if r := classifyOrDie(t, v, "R(x, x)"); r.Complexity != FP {
		t.Errorf("R(x,x) Codd should be FP: %v", r.Complexity)
	}

	u := Variant{Valuations, true, true}
	if r := classifyOrDie(t, u, "R(x) ∧ S(x, y) ∧ T(y)"); r.Complexity != SharpPComplete {
		t.Errorf("path uniform Codd: %v", r.Complexity)
	}
	// The open case: R(x,y) ∧ S(x,y) on uniform Codd tables.
	if r := classifyOrDie(t, u, "R(x, y) ∧ S(x, y)"); r.Complexity != Open {
		t.Errorf("R(x,y)∧S(x,y) uniform Codd should be open: %v", r.Complexity)
	}
	// R(x,x) on uniform Codd tables: FP via Theorem 3.7.
	if r := classifyOrDie(t, u, "R(x, x)"); r.Complexity != FP {
		t.Errorf("R(x,x) uniform Codd should be FP: %v", r.Complexity)
	}
	// R(x)∧S(x) on uniform Codd: FP via Theorem 3.9's algorithm.
	if r := classifyOrDie(t, u, "R(x) ∧ S(x)"); r.Complexity != FP {
		t.Errorf("R(x)∧S(x) uniform Codd should be FP: %v", r.Complexity)
	}
}

// TestTable1Completions checks the #Comp columns.
func TestTable1Completions(t *testing.T) {
	// Non-uniform: hard for every sjfBCQ; #P-complete on Codd tables,
	// #P-hard (membership open) on naïve tables.
	if r := classifyOrDie(t, Variant{Completions, false, false}, "R(x)"); r.Complexity != SharpPHard {
		t.Errorf("#Comp(R(x)): %v", r.Complexity)
	}
	if r := classifyOrDie(t, Variant{Completions, true, false}, "R(x)"); r.Complexity != SharpPComplete {
		t.Errorf("#CompCd(R(x)): %v", r.Complexity)
	}
	// Uniform: dichotomy on R(x,x) / R(x,y).
	un := Variant{Completions, false, true}
	if r := classifyOrDie(t, un, "R(x, y)"); r.Complexity != SharpPHard {
		t.Errorf("#Compu(R(x,y)): %v", r.Complexity)
	}
	if r := classifyOrDie(t, un, "R(x, x)"); r.Complexity != SharpPHard {
		t.Errorf("#Compu(R(x,x)): %v", r.Complexity)
	}
	if r := classifyOrDie(t, un, "R(x) ∧ S(x) ∧ T(y)"); r.Complexity != FP {
		t.Errorf("unary #Compu should be FP: %v", r.Complexity)
	}
	cd := Variant{Completions, true, true}
	if r := classifyOrDie(t, cd, "R(x, y)"); r.Complexity != SharpPComplete {
		t.Errorf("#CompuCd(R(x,y)): %v", r.Complexity)
	}
	if r := classifyOrDie(t, cd, "R(x)"); r.Complexity != FP {
		t.Errorf("#CompuCd(R(x)): %v", r.Complexity)
	}
}

// TestValEasierThanComp verifies the paper's observation that the tractable
// cases for #Val strictly contain those for #Comp, on a catalog of queries.
func TestValEasierThanComp(t *testing.T) {
	queries := []string{
		"R(x)",
		"R(x, x)",
		"R(x, y)",
		"R(x) ∧ S(x)",
		"R(x) ∧ S(y)",
		"R(x, y) ∧ S(x, y)",
		"R(x) ∧ S(x, y) ∧ T(y)",
		"R(x, y) ∧ S(z)",
	}
	for _, qs := range queries {
		for _, codd := range []bool{false, true} {
			for _, uni := range []bool{false, true} {
				val := classifyOrDie(t, Variant{Valuations, codd, uni}, qs)
				comp := classifyOrDie(t, Variant{Completions, codd, uni}, qs)
				if comp.Complexity == FP && val.Complexity != FP {
					t.Errorf("%s codd=%v uniform=%v: #Comp in FP but #Val not (%v)",
						qs, codd, uni, val.Complexity)
				}
			}
		}
	}
}

// TestApproximability checks Section 5: valuations always admit an FPRAS;
// completions do not unless NP=RP (except FP and the open Codd case).
func TestApproximability(t *testing.T) {
	if r := classifyOrDie(t, Variant{Valuations, false, false}, "R(x, x)"); r.Approx != HasFPRAS {
		t.Errorf("#Val FPRAS: %v", r.Approx)
	}
	if r := classifyOrDie(t, Variant{Completions, false, false}, "R(x)"); r.Approx != NoFPRASUnlessNPeqRP {
		t.Errorf("#Comp non-uniform approx: %v", r.Approx)
	}
	if r := classifyOrDie(t, Variant{Completions, false, true}, "R(x, y)"); r.Approx != NoFPRASUnlessNPeqRP {
		t.Errorf("#Compu(R(x,y)) approx: %v", r.Approx)
	}
	if r := classifyOrDie(t, Variant{Completions, true, true}, "R(x, y)"); r.Approx != ApproxOpen {
		t.Errorf("#CompuCd(R(x,y)) approx should be open: %v", r.Approx)
	}
	if r := classifyOrDie(t, Variant{Completions, false, true}, "R(x) ∧ S(x)"); r.Approx != HasFPRAS {
		t.Errorf("FP cases trivially admit FPRAS: %v", r.Approx)
	}
}

func TestClassifyRejectsNonSjf(t *testing.T) {
	selfJoin := &cq.BCQ{Atoms: []cq.Atom{
		{Rel: "R", Vars: []string{"x"}},
		{Rel: "R", Vars: []string{"y"}},
	}}
	if _, err := Classify(Variant{Valuations, false, false}, selfJoin); err == nil {
		t.Fatal("self-join accepted")
	}
	if _, err := Classify(Variant{Valuations, false, false}, &cq.BCQ{}); err == nil {
		t.Fatal("empty query accepted")
	}
}

func TestClassifyAllAndTable(t *testing.T) {
	rs, err := ClassifyAll(cq.MustParseBCQ("R(x, y)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 8 {
		t.Fatalf("got %d results", len(rs))
	}
	tab := Table1()
	for _, frag := range []string{"R(x,x)", "R(x) ∧ S(x,y) ∧ T(y)", "dichotomy open", "hard for every sjfBCQ"} {
		if !strings.Contains(tab, frag) {
			t.Errorf("Table1 missing %q:\n%s", frag, tab)
		}
	}
}

// TestHardPatternIsWitness: whenever a hard pattern is reported, it really
// is a pattern of the query.
func TestHardPatternIsWitness(t *testing.T) {
	queries := []string{
		"R(x, x)", "R(x, y)", "R(x) ∧ S(x)", "R(x) ∧ S(x, y) ∧ T(y)",
		"R(x, y) ∧ S(x, y)", "A(x, y, z) ∧ B(y) ∧ C(z)",
	}
	for _, qs := range queries {
		q := cq.MustParseBCQ(qs)
		rs, err := ClassifyAll(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rs {
			if r.HardPattern != nil && !cq.IsPatternOf(r.HardPattern, q) {
				t.Errorf("%v for %s: reported pattern %v is not a pattern of the query",
					r.Variant, qs, r.HardPattern)
			}
			if r.Complexity == FP && r.HardPattern != nil {
				t.Errorf("%v for %s: FP outcome with a hard pattern", r.Variant, qs)
			}
		}
	}
}

// TestMonotoneInRestrictions: restricting to Codd tables or to uniform
// domains never makes a problem harder (FP stays FP).
func TestMonotoneInRestrictions(t *testing.T) {
	queries := []string{
		"R(x)", "R(x, x)", "R(x, y)", "R(x) ∧ S(x)", "R(x) ∧ S(y)",
		"R(x, y) ∧ S(x, y)", "R(x) ∧ S(x, y) ∧ T(y)",
	}
	rank := func(c Complexity) int {
		switch c {
		case FP:
			return 0
		case Open:
			return 1
		default:
			return 2
		}
	}
	for _, qs := range queries {
		for _, kind := range []CountingKind{Valuations, Completions} {
			base := classifyOrDie(t, Variant{kind, false, false}, qs)
			codd := classifyOrDie(t, Variant{kind, true, false}, qs)
			if rank(codd.Complexity) > rank(base.Complexity) {
				t.Errorf("%s: Codd restriction made %v harder (%v -> %v)", qs, kind, base.Complexity, codd.Complexity)
			}
			uni := classifyOrDie(t, Variant{kind, false, true}, qs)
			if rank(uni.Complexity) > rank(base.Complexity) {
				t.Errorf("%s: uniform restriction made %v harder (%v -> %v)", qs, kind, base.Complexity, uni.Complexity)
			}
			both := classifyOrDie(t, Variant{kind, true, true}, qs)
			if rank(both.Complexity) > rank(codd.Complexity) || rank(both.Complexity) > rank(uni.Complexity) {
				t.Errorf("%s: combined restriction made %v harder", qs, kind)
			}
		}
	}
}
