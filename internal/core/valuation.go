package core

import (
	"sort"
	"strings"
)

// Valuation maps nulls to constants. A valuation ν of a database D must
// assign to every null of D a constant of its domain; ForEachValuation
// produces exactly those.
type Valuation map[NullID]string

// Clone returns a copy of the valuation.
func (v Valuation) Clone() Valuation {
	c := make(Valuation, len(v))
	for k, val := range v {
		c[k] = val
	}
	return c
}

// String renders the valuation as "{?1→a, ?2→b}" in null-ID order.
func (v Valuation) String() string {
	ids := make([]NullID, 0, len(v))
	for n := range v {
		ids = append(ids, n)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	parts := make([]string, len(ids))
	for i, n := range ids {
		parts[i] = n.String() + "→" + v[n]
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// IsValuationOf reports whether v assigns to every null of d a constant in
// that null's domain (v may also assign nulls not occurring in d).
func (v Valuation) IsValuationOf(d *Database) bool {
	for _, n := range d.Nulls() {
		c, ok := v[n]
		if !ok {
			return false
		}
		found := false
		for _, x := range d.Domain(n) {
			if x == c {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
