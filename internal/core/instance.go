package core

import (
	"sort"
	"strings"
)

// Instance is a complete database: a set of ground facts. It is the result
// of applying a valuation to an incomplete database, and the object on which
// Boolean queries are evaluated.
type Instance struct {
	tuples map[string][][]string
	keys   map[string]bool
	size   int
	keyBuf []byte // reusable ground-key scratch for Add
}

// NewInstance returns an empty complete database.
func NewInstance() *Instance {
	return &Instance{
		tuples: make(map[string][][]string),
		keys:   make(map[string]bool),
	}
}

func appendGroundKey(dst []byte, rel string, args []string) []byte {
	dst = append(dst, rel...)
	for _, a := range args {
		dst = append(dst, '\x00')
		dst = append(dst, a...)
	}
	return dst
}

// Add inserts the ground fact rel(args...); duplicates are ignored. The
// duplicate check probes the key map with a reused byte buffer (the
// compiler elides the string conversion in a map lookup), so a duplicate
// insert allocates nothing; only genuinely new facts materialize the key.
func (i *Instance) Add(rel string, args ...string) {
	i.keyBuf = appendGroundKey(i.keyBuf[:0], rel, args)
	if i.keys[string(i.keyBuf)] {
		return
	}
	i.keys[string(i.keyBuf)] = true
	i.tuples[rel] = append(i.tuples[rel], append([]string(nil), args...))
	i.size++
}

// Has reports whether the ground fact rel(args...) is present.
func (i *Instance) Has(rel string, args ...string) bool {
	var buf [128]byte
	return i.keys[string(appendGroundKey(buf[:0], rel, args))]
}

// Tuples returns the tuples of relation rel, in insertion order. The result
// must not be modified.
func (i *Instance) Tuples(rel string) [][]string { return i.tuples[rel] }

// Relations returns the relation names with at least one tuple, sorted.
func (i *Instance) Relations() []string {
	out := make([]string, 0, len(i.tuples))
	for r := range i.tuples {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Size returns the number of (distinct) facts.
func (i *Instance) Size() int { return i.size }

// CanonicalKey returns a canonical encoding of the instance: the sorted fact
// keys joined by newlines. Two instances are equal as databases if and only
// if their canonical keys are equal. It is used to deduplicate completions.
func (i *Instance) CanonicalKey() string {
	ks := make([]string, 0, len(i.keys))
	for k := range i.keys {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return strings.Join(ks, "\n")
}

// String renders the instance with one fact per line, sorted.
func (i *Instance) String() string {
	var lines []string
	for _, r := range i.Relations() {
		for _, t := range i.tuples[r] {
			lines = append(lines, r+"("+strings.Join(t, ", ")+")")
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// Contains reports whether every fact of other is a fact of i.
func (i *Instance) Contains(other *Instance) bool {
	for k := range other.keys {
		if !i.keys[k] {
			return false
		}
	}
	return true
}
