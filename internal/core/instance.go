package core

import (
	"sort"
	"strings"
)

// Instance is a complete database: a set of ground facts. It is the result
// of applying a valuation to an incomplete database, and the object on which
// Boolean queries are evaluated.
type Instance struct {
	tuples map[string][][]string
	keys   map[string]bool
	size   int
}

// NewInstance returns an empty complete database.
func NewInstance() *Instance {
	return &Instance{
		tuples: make(map[string][][]string),
		keys:   make(map[string]bool),
	}
}

func groundKey(rel string, args []string) string {
	var b strings.Builder
	b.WriteString(rel)
	for _, a := range args {
		b.WriteByte('\x00')
		b.WriteString(a)
	}
	return b.String()
}

// Add inserts the ground fact rel(args...); duplicates are ignored.
func (i *Instance) Add(rel string, args ...string) {
	k := groundKey(rel, args)
	if i.keys[k] {
		return
	}
	i.keys[k] = true
	i.tuples[rel] = append(i.tuples[rel], append([]string(nil), args...))
	i.size++
}

// Has reports whether the ground fact rel(args...) is present.
func (i *Instance) Has(rel string, args ...string) bool {
	return i.keys[groundKey(rel, args)]
}

// Tuples returns the tuples of relation rel, in insertion order. The result
// must not be modified.
func (i *Instance) Tuples(rel string) [][]string { return i.tuples[rel] }

// Relations returns the relation names with at least one tuple, sorted.
func (i *Instance) Relations() []string {
	out := make([]string, 0, len(i.tuples))
	for r := range i.tuples {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Size returns the number of (distinct) facts.
func (i *Instance) Size() int { return i.size }

// CanonicalKey returns a canonical encoding of the instance: the sorted fact
// keys joined by newlines. Two instances are equal as databases if and only
// if their canonical keys are equal. It is used to deduplicate completions.
func (i *Instance) CanonicalKey() string {
	ks := make([]string, 0, len(i.keys))
	for k := range i.keys {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return strings.Join(ks, "\n")
}

// String renders the instance with one fact per line, sorted.
func (i *Instance) String() string {
	var lines []string
	for _, r := range i.Relations() {
		for _, t := range i.tuples[r] {
			lines = append(lines, r+"("+strings.Join(t, ", ")+")")
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// Contains reports whether every fact of other is a fact of i.
func (i *Instance) Contains(other *Instance) bool {
	for k := range other.keys {
		if !i.keys[k] {
			return false
		}
	}
	return true
}
