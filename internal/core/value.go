// Package core implements the data model of incomplete relational databases
// under the closed-world assumption, following Section 2 of Arenas, Barceló
// and Monet, "Counting Problems over Incomplete Databases" (PODS 2020).
//
// An incomplete database D = (T, dom) is a set of facts T whose arguments are
// constants or labeled nulls, together with a finite domain for every null
// (either per-null in the non-uniform setting, or a single shared domain in
// the uniform setting). A valuation maps every null to a constant of its
// domain; applying a valuation yields a completion, a complete database under
// set semantics (duplicate facts collapse).
package core

import (
	"fmt"
	"strconv"
	"strings"
)

// NullID identifies a labeled null. The zero value is invalid; valid nulls
// have positive IDs. Two occurrences of the same NullID in a database denote
// the same unknown value (a naïve table); if every null occurs at most once,
// the database is a Codd table.
type NullID int

// String returns the textual form of the null, e.g. "?3".
func (n NullID) String() string { return "?" + strconv.Itoa(int(n)) }

// Value is an argument of a fact: either a constant or a null.
// The zero Value is the empty-string constant.
type Value struct {
	c string
	n NullID
}

// Const returns a constant value.
func Const(s string) Value { return Value{c: s} }

// Null returns a null value. It panics if id is not positive, since NullID 0
// is reserved as "not a null".
func Null(id NullID) Value {
	if id <= 0 {
		panic(fmt.Sprintf("core: invalid null id %d", id))
	}
	return Value{n: id}
}

// IsNull reports whether the value is a null.
func (v Value) IsNull() bool { return v.n > 0 }

// NullID returns the null identifier, or 0 if the value is a constant.
func (v Value) NullID() NullID { return v.n }

// Constant returns the constant name. It panics if the value is a null.
func (v Value) Constant() string {
	if v.IsNull() {
		panic("core: Constant called on a null value")
	}
	return v.c
}

// String renders constants verbatim and nulls as "?<id>".
func (v Value) String() string {
	if v.IsNull() {
		return v.n.String()
	}
	return v.c
}

// ParseValue parses the textual form produced by Value.String: a token
// starting with '?' followed by a positive integer is a null, anything else
// is a constant.
func ParseValue(s string) (Value, error) {
	if strings.HasPrefix(s, "?") {
		id, err := strconv.Atoi(s[1:])
		if err != nil || id <= 0 {
			return Value{}, fmt.Errorf("core: invalid null token %q", s)
		}
		return Null(NullID(id)), nil
	}
	return Const(s), nil
}
