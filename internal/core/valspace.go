package core

import (
	"fmt"
	"math/big"
	"math/rand"
)

// ValuationSpace is an indexed view of the valuation space of a database:
// the set of all valuations ν mapping each null to a constant of its
// domain, totally ordered in mixed radix. The nulls, sorted by ID, are the
// digits of the index — the null with the largest ID is the
// fastest-varying one — so index order coincides with the enumeration
// order of Database.ForEachValuation. The space is a snapshot: mutating
// the database afterwards does not affect it.
//
// Random access via At makes the space uniformly samplable in O(#nulls)
// per draw, and Range makes any contiguous slice of it enumerable
// independently of the rest, which is what allows brute-force counting to
// be sharded across workers.
type ValuationSpace struct {
	nulls []NullID
	doms  [][]string
	size  *big.Int
}

// ValuationSpace returns the indexed valuation space of the database. It
// returns an error if some null lacks a domain. A database with no nulls
// has a space of size one (the empty valuation); a null with an empty
// domain yields a space of size zero.
func (d *Database) ValuationSpace() (*ValuationSpace, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	nulls := d.Nulls()
	s := &ValuationSpace{
		nulls: append([]NullID(nil), nulls...),
		doms:  make([][]string, len(nulls)),
		size:  big.NewInt(1),
	}
	for i, n := range nulls {
		s.doms[i] = d.Domain(n)
		s.size.Mul(s.size, big.NewInt(int64(len(s.doms[i]))))
	}
	return s, nil
}

// Size returns the number of valuations in the space: the product of the
// domain sizes of the nulls.
func (s *ValuationSpace) Size() *big.Int { return new(big.Int).Set(s.size) }

// Nulls returns the nulls of the space, sorted by ID. The returned slice
// must not be modified.
func (s *ValuationSpace) Nulls() []NullID { return s.nulls }

// At returns the valuation at index i, 0 ≤ i < Size().
func (s *ValuationSpace) At(i *big.Int) (Valuation, error) {
	v := make(Valuation, len(s.nulls))
	if err := s.AtInto(i, v); err != nil {
		return nil, err
	}
	return v, nil
}

// AtInto decodes the valuation at index i into v, reusing v's storage. v
// must already hold exactly the nulls of the space (or be empty on first
// use with enough capacity).
func (s *ValuationSpace) AtInto(i *big.Int, v Valuation) error {
	if i.Sign() < 0 || i.Cmp(s.size) >= 0 {
		return fmt.Errorf("core: valuation index %v out of range [0, %v)", i, s.size)
	}
	rem := new(big.Int).Set(i)
	radix, digit := new(big.Int), new(big.Int)
	for k := len(s.nulls) - 1; k >= 0; k-- {
		radix.SetInt64(int64(len(s.doms[k])))
		rem.QuoRem(rem, radix, digit)
		v[s.nulls[k]] = s.doms[k][digit.Int64()]
	}
	return nil
}

// Sample returns a uniformly random valuation of the space, drawn in
// O(#nulls) time without enumerating anything. Each mixed-radix digit is
// drawn independently, which is the uniform distribution over the space
// without any bignum arithmetic. It returns an error on an empty space.
// The Valuation written into v is the one returned; pass a valuation
// previously returned by Sample to avoid the allocation.
func (s *ValuationSpace) Sample(r *rand.Rand, v Valuation) (Valuation, error) {
	if s.size.Sign() == 0 {
		return nil, fmt.Errorf("core: cannot sample an empty valuation space")
	}
	if v == nil {
		v = make(Valuation, len(s.nulls))
	}
	for k, n := range s.nulls {
		v[n] = s.doms[k][r.Intn(len(s.doms[k]))]
	}
	return v, nil
}

// Range enumerates the valuations with index in the half-open interval
// [lo, hi), in index order, calling fn with each. The Valuation passed to
// fn is reused between calls; fn must copy it (Valuation.Clone) if it
// needs to retain it. Enumeration stops early if fn returns false. It
// returns an error if the interval does not satisfy 0 ≤ lo ≤ hi ≤ Size().
func (s *ValuationSpace) Range(lo, hi *big.Int, fn func(Valuation) bool) error {
	if lo.Sign() < 0 || hi.Cmp(s.size) > 0 || lo.Cmp(hi) > 0 {
		return fmt.Errorf("core: valuation range [%v, %v) outside [0, %v)", lo, hi, s.size)
	}
	n := new(big.Int).Sub(hi, lo)
	if n.Sign() == 0 {
		return nil
	}
	// Decode lo into the odometer digits.
	idx := make([]int, len(s.nulls))
	rem := new(big.Int).Set(lo)
	radix, digit := new(big.Int), new(big.Int)
	for k := len(s.nulls) - 1; k >= 0; k-- {
		radix.SetInt64(int64(len(s.doms[k])))
		rem.QuoRem(rem, radix, digit)
		idx[k] = int(digit.Int64())
	}
	v := make(Valuation, len(s.nulls))
	for k, null := range s.nulls {
		v[null] = s.doms[k][idx[k]]
	}
	advance := func() {
		for k := len(idx) - 1; k >= 0; k-- {
			idx[k]++
			if idx[k] < len(s.doms[k]) {
				v[s.nulls[k]] = s.doms[k][idx[k]]
				return
			}
			idx[k] = 0
			v[s.nulls[k]] = s.doms[k][0]
		}
	}
	if n.IsInt64() {
		for remaining := n.Int64(); ; {
			if !fn(v) {
				return nil
			}
			if remaining--; remaining == 0 {
				return nil
			}
			advance()
		}
	}
	// Astronomically large ranges cannot terminate in practice, but stay
	// correct: count down with a big counter.
	one := big.NewInt(1)
	for remaining := n; ; {
		if !fn(v) {
			return nil
		}
		if remaining.Sub(remaining, one); remaining.Sign() == 0 {
			return nil
		}
		advance()
	}
}
