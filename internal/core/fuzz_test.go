package core

import "testing"

// FuzzParseDatabase asserts the parse→render→parse round trip of the
// textual database format: any input ParseDatabaseString accepts must
// render (Database.String) to a form that parses again, and that form
// must be a fixpoint — renderings are canonical-by-construction even when
// the accepted input was sloppy (odd whitespace, padded null IDs like
// "?007", dropped unused domains).
func FuzzParseDatabase(f *testing.F) {
	for _, seed := range []string{
		"",
		"# just a comment\n",
		"uniform a b c\nR(a, ?1)\n",
		"uniform\nR(a)\n",
		"dom ?1 a b\ndom ?2 b\nR(?1, ?2)\nS(?2)\n",
		"dom ?1 a b\nR(?1, ?1)\n",
		"dom ?007 x\nR(?007)\n",
		"R(a, b)\nR(a, b)\n",
		"uniform a\nR(?1)\nR(?2)\nS(?1, ?2, ?1)\n",
		"dom ?3 a\nT(c)\n",
		"uniform a b\n# mid comment\n\nR(?1, a)\n",
		"dom ?1\nR(?1)\n",
		"uniform a\nR(a(b)\n",
		"uniform a\nR( a , ?1 )\n",
		"dom ?1 a\ndom ?1 b c\nR(?1)\n",
		"uniform a b\nuniform c\n",
		"dom ?x a\n",
		"R(?0)\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		db, err := ParseDatabaseString(src)
		if err != nil {
			return // invalid inputs are fine; they just must not panic
		}
		rendered := db.String()
		db2, err := ParseDatabaseString(rendered)
		if err != nil {
			t.Fatalf("ParseDatabaseString(%q) ok but rendering %q does not re-parse: %v", src, rendered, err)
		}
		if again := db2.String(); again != rendered {
			t.Fatalf("rendering is not a fixpoint: %q → %q → %q", src, rendered, again)
		}
	})
}
