package core

import (
	"math/big"
	"reflect"
	"testing"
)

func TestRemoveFactKeepsOrderAndIndexes(t *testing.T) {
	d := NewDatabase()
	d.MustAddFact("R", Const("a"), Null(1))
	d.MustAddFact("R", Const("b"), Const("c"))
	d.MustAddFact("S", Null(2))
	d.MustAddFact("R", Const("d"), Null(1))
	if err := d.SetDomain(1, []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	if err := d.SetDomain(2, []string{"x"}); err != nil {
		t.Fatal(err)
	}

	if got := d.RemoveFact("R", Const("b"), Const("c")); !got {
		t.Fatalf("RemoveFact of a present fact returned false")
	}
	if got := d.RemoveFact("R", Const("b"), Const("c")); got {
		t.Fatalf("RemoveFact of an absent fact returned true")
	}

	wantOrder := []string{"R(a, ?1)", "S(?2)", "R(d, ?1)"}
	var gotOrder []string
	for _, f := range d.Facts() {
		gotOrder = append(gotOrder, f.String())
	}
	if !reflect.DeepEqual(gotOrder, wantOrder) {
		t.Fatalf("Facts() order after removal = %v, want %v", gotOrder, wantOrder)
	}
	var gotRel []string
	for _, f := range d.FactsOf("R") {
		gotRel = append(gotRel, f.String())
	}
	if want := []string{"R(a, ?1)", "R(d, ?1)"}; !reflect.DeepEqual(gotRel, want) {
		t.Fatalf("FactsOf(R) after removal = %v, want %v", gotRel, want)
	}

	// The key index must have been re-pointed: removing another fact by
	// key still works, and duplicate adds are still detected.
	if err := d.AddFact("R", Const("d"), Null(1)); err != nil {
		t.Fatal(err)
	}
	if len(d.Facts()) != 3 {
		t.Fatalf("duplicate add after removal changed the table: %d facts", len(d.Facts()))
	}
	if !d.RemoveFact("R", Const("d"), Null(1)) {
		t.Fatalf("RemoveFact by key after an earlier removal failed")
	}

	// Arity stays registered for emptied relations.
	d.RemoveFact("S", Null(2))
	if err := d.AddFact("S", Const("a"), Const("b")); err == nil {
		t.Fatalf("arity registration was lost after emptying the relation")
	}
}

func TestRemoveFactNullBookkeeping(t *testing.T) {
	d := NewDatabase()
	d.MustAddFact("R", Null(1), Null(1))
	d.MustAddFact("S", Null(1))
	d.MustAddFact("S", Null(2))
	if err := d.SetDomain(1, []string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	if err := d.SetDomain(2, []string{"x", "y", "z"}); err != nil {
		t.Fatal(err)
	}

	d.RemoveFact("R", Null(1), Null(1))
	if !d.HasNull(1) {
		t.Fatalf("null ?1 still occurs in S(?1) but HasNull reports false")
	}
	d.RemoveFact("S", Null(1))
	if d.HasNull(1) {
		t.Fatalf("null ?1 no longer occurs but HasNull reports true")
	}
	if want := []NullID{2}; !reflect.DeepEqual(d.Nulls(), want) {
		t.Fatalf("Nulls() = %v, want %v", d.Nulls(), want)
	}
	n, err := d.NumValuations()
	if err != nil {
		t.Fatal(err)
	}
	if n.Cmp(big.NewInt(3)) != 0 {
		t.Fatalf("NumValuations after removals = %v, want 3", n)
	}
}

func TestExtendDomain(t *testing.T) {
	d := NewDatabase()
	d.MustAddFact("R", Null(1))
	if err := d.SetDomain(1, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	v0 := d.Version()
	if err := d.ExtendDomain(1, "b", "c", "c", "d"); err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "b", "c", "d"}; !reflect.DeepEqual(d.Domain(1), want) {
		t.Fatalf("Domain(1) = %v, want %v", d.Domain(1), want)
	}
	if d.Version() != v0+1 {
		t.Fatalf("version bumped %d times, want 1", d.Version()-v0)
	}
	// All-duplicate extension is a no-op.
	if err := d.ExtendDomain(1, "a", "d"); err != nil {
		t.Fatal(err)
	}
	if d.Version() != v0+1 {
		t.Fatalf("no-op extension bumped the version")
	}
	if err := d.ExtendUniformDomain("x"); err == nil {
		t.Fatalf("ExtendUniformDomain on a non-uniform database did not fail")
	}

	u := NewUniformDatabase([]string{"a"})
	u.MustAddFact("R", Null(1))
	if err := u.ExtendUniformDomain("a", "b"); err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "b"}; !reflect.DeepEqual(u.UniformDomain(), want) {
		t.Fatalf("UniformDomain = %v, want %v", u.UniformDomain(), want)
	}
	if err := u.ExtendDomain(1, "c"); err == nil {
		t.Fatalf("ExtendDomain on a uniform database did not fail")
	}
}

func TestVersionAndDeltas(t *testing.T) {
	d := NewDatabase()
	if d.Version() != 0 {
		t.Fatalf("fresh database at version %d", d.Version())
	}
	d.MustAddFact("R", Null(1))
	if err := d.SetDomain(1, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	v := d.Version()

	d.MustAddFact("R", Null(2))
	d.MustAddFact("R", Null(2)) // duplicate: no-op
	if err := d.SetDomain(2, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if err := d.SetDomain(2, []string{"a", "b"}); err != nil { // unchanged: no-op
		t.Fatal(err)
	}
	d.RemoveFact("R", Null(1))
	if err := d.ExtendDomain(2, "c"); err != nil {
		t.Fatal(err)
	}

	deltas, ok := d.DeltasSince(v)
	if !ok {
		t.Fatalf("DeltasSince(%d) not available", v)
	}
	wantOps := []DeltaOp{DeltaAddFact, DeltaSetDomain, DeltaRemoveFact, DeltaExtendDomain}
	if len(deltas) != len(wantOps) {
		t.Fatalf("got %d deltas, want %d: %+v", len(deltas), len(wantOps), deltas)
	}
	for i, want := range wantOps {
		if deltas[i].Op != want {
			t.Fatalf("delta %d op = %v, want %v", i, deltas[i].Op, want)
		}
		if deltas[i].Version != v+uint64(i)+1 {
			t.Fatalf("delta %d version = %d, want %d", i, deltas[i].Version, v+uint64(i)+1)
		}
	}
	if deltas[0].Fact.String() != "R(?2)" {
		t.Fatalf("add delta fact = %v", deltas[0].Fact)
	}
	if deltas[2].Fact.String() != "R(?1)" {
		t.Fatalf("remove delta fact = %v", deltas[2].Fact)
	}
	if !reflect.DeepEqual(deltas[3].Added, []string{"c"}) {
		t.Fatalf("extend delta added = %v", deltas[3].Added)
	}

	if got, ok := d.DeltasSince(d.Version()); !ok || len(got) != 0 {
		t.Fatalf("DeltasSince(current) = %v, %v", got, ok)
	}
	if _, ok := d.DeltasSince(d.Version() + 1); ok {
		t.Fatalf("DeltasSince(future) reported ok")
	}
}

func TestDeltaLogTrimming(t *testing.T) {
	d := NewUniformDatabase([]string{"a"})
	d.MustAddFact("Seed", Const("s"))
	v := d.Version()
	for i := 0; i < maxDeltaLog+10; i++ {
		d.MustAddFact("R", Const("c"), Null(NullID(i+1)))
	}
	if _, ok := d.DeltasSince(v); ok {
		t.Fatalf("DeltasSince beyond the trimmed log reported ok")
	}
	recent, ok := d.DeltasSince(d.Version() - 5)
	if !ok || len(recent) != 5 {
		t.Fatalf("recent deltas = %d, ok=%v; want 5, true", len(recent), ok)
	}
}
