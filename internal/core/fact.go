package core

import (
	"fmt"
	"strings"
)

// Fact is an atom R(a1, ..., ak) whose arguments may be constants or nulls.
type Fact struct {
	Rel  string
	Args []Value
}

// NewFact builds a fact from a relation name and argument values.
func NewFact(rel string, args ...Value) Fact {
	return Fact{Rel: rel, Args: args}
}

// Arity returns the number of arguments.
func (f Fact) Arity() int { return len(f.Args) }

// IsGround reports whether the fact contains no nulls.
func (f Fact) IsGround() bool {
	for _, a := range f.Args {
		if a.IsNull() {
			return false
		}
	}
	return true
}

// Nulls returns the distinct nulls occurring in the fact, in order of first
// occurrence.
func (f Fact) Nulls() []NullID {
	var out []NullID
	seen := make(map[NullID]bool, len(f.Args))
	for _, a := range f.Args {
		if a.IsNull() && !seen[a.NullID()] {
			seen[a.NullID()] = true
			out = append(out, a.NullID())
		}
	}
	return out
}

// Key returns a canonical encoding of the fact, unique per fact. It is used
// for set semantics (fact deduplication).
func (f Fact) Key() string {
	var b strings.Builder
	b.WriteString(f.Rel)
	for _, a := range f.Args {
		b.WriteByte('\x00')
		if a.IsNull() {
			b.WriteString(a.NullID().String())
		} else {
			// Escape a leading '?' so that the constant "?1" cannot
			// collide with null ?1.
			if strings.HasPrefix(a.Constant(), "?") {
				b.WriteByte('\x01')
			}
			b.WriteString(a.Constant())
		}
	}
	return b.String()
}

// String renders the fact as "R(a, ?1)".
func (f Fact) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", f.Rel, strings.Join(parts, ", "))
}

// ParseFact parses the textual form produced by Fact.String, e.g.
// "R(a, ?1, b)". Argument tokens beginning with '?' are nulls.
func ParseFact(s string) (Fact, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open <= 0 || !strings.HasSuffix(s, ")") {
		return Fact{}, fmt.Errorf("core: malformed fact %q", s)
	}
	rel := strings.TrimSpace(s[:open])
	inner := strings.TrimSpace(s[open+1 : len(s)-1])
	if rel == "" {
		return Fact{}, fmt.Errorf("core: malformed fact %q: empty relation", s)
	}
	if inner == "" {
		return Fact{}, fmt.Errorf("core: malformed fact %q: zero arity", s)
	}
	toks := strings.Split(inner, ",")
	args := make([]Value, len(toks))
	for i, t := range toks {
		t = strings.TrimSpace(t)
		if t == "" {
			return Fact{}, fmt.Errorf("core: malformed fact %q: empty argument %d", s, i)
		}
		v, err := ParseValue(t)
		if err != nil {
			return Fact{}, err
		}
		args[i] = v
	}
	return Fact{Rel: rel, Args: args}, nil
}
