package core

import (
	"math/big"
	"testing"
)

func TestValueBasics(t *testing.T) {
	c := Const("a")
	if c.IsNull() {
		t.Fatal("constant reported as null")
	}
	if c.Constant() != "a" {
		t.Fatalf("Constant() = %q", c.Constant())
	}
	n := Null(3)
	if !n.IsNull() || n.NullID() != 3 {
		t.Fatalf("bad null: %v", n)
	}
	if n.String() != "?3" {
		t.Fatalf("null String() = %q", n.String())
	}
}

func TestNullPanicsOnInvalidID(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Null(0) did not panic")
		}
	}()
	Null(0)
}

func TestConstantPanicsOnNull(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Constant() on null did not panic")
		}
	}()
	Null(1).Constant()
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue("?12")
	if err != nil || !v.IsNull() || v.NullID() != 12 {
		t.Fatalf("ParseValue(?12) = %v, %v", v, err)
	}
	v, err = ParseValue("abc")
	if err != nil || v.IsNull() || v.Constant() != "abc" {
		t.Fatalf("ParseValue(abc) = %v, %v", v, err)
	}
	if _, err := ParseValue("?x"); err == nil {
		t.Fatal("ParseValue(?x) should fail")
	}
	if _, err := ParseValue("?0"); err == nil {
		t.Fatal("ParseValue(?0) should fail")
	}
}

func TestFactKeyDistinguishesNullFromConstant(t *testing.T) {
	f1 := NewFact("R", Null(1))
	f2 := NewFact("R", Const("?1"))
	if f1.Key() == f2.Key() {
		t.Fatal("fact keys collide between null ?1 and constant \"?1\"")
	}
}

func TestFactNullsAndGround(t *testing.T) {
	f := NewFact("R", Null(2), Const("a"), Null(2), Null(5))
	if f.IsGround() {
		t.Fatal("fact with nulls reported ground")
	}
	ns := f.Nulls()
	if len(ns) != 2 || ns[0] != 2 || ns[1] != 5 {
		t.Fatalf("Nulls() = %v", ns)
	}
	g := NewFact("R", Const("a"))
	if !g.IsGround() {
		t.Fatal("ground fact not reported ground")
	}
}

func TestParseFactRoundTrip(t *testing.T) {
	for _, s := range []string{"R(a, ?1)", "S(x)", "Edge(u, v, ?7)"} {
		f, err := ParseFact(s)
		if err != nil {
			t.Fatalf("ParseFact(%q): %v", s, err)
		}
		if f.String() != s {
			t.Fatalf("round trip %q -> %q", s, f.String())
		}
	}
}

func TestParseFactErrors(t *testing.T) {
	for _, s := range []string{"", "R", "R()", "(a)", "R(a", "R(a,,b)", "R(?0)"} {
		if _, err := ParseFact(s); err == nil {
			t.Errorf("ParseFact(%q) should fail", s)
		}
	}
}

func TestAddFactSetSemanticsAndArity(t *testing.T) {
	d := NewDatabase()
	if err := d.AddFact("R", Const("a"), Const("b")); err != nil {
		t.Fatal(err)
	}
	if err := d.AddFact("R", Const("a"), Const("b")); err != nil {
		t.Fatal(err)
	}
	if len(d.Facts()) != 1 {
		t.Fatalf("duplicate fact not deduplicated: %d facts", len(d.Facts()))
	}
	if err := d.AddFact("R", Const("a")); err == nil {
		t.Fatal("arity mismatch not detected")
	}
	if err := d.AddFact("S"); err == nil {
		t.Fatal("zero-arity fact accepted")
	}
}

func TestCoddDetection(t *testing.T) {
	d := NewDatabase()
	d.MustAddFact("R", Null(1), Const("a"))
	d.MustAddFact("S", Null(2))
	if !d.IsCodd() {
		t.Fatal("Codd table not recognized")
	}
	d.MustAddFact("T", Null(1))
	if d.IsCodd() {
		t.Fatal("repeated null across facts not detected")
	}

	d2 := NewDatabase()
	d2.MustAddFact("R", Null(1), Null(1))
	if d2.IsCodd() {
		t.Fatal("repeated null within a fact not detected")
	}
}

func TestValidateMissingDomain(t *testing.T) {
	d := NewDatabase()
	d.MustAddFact("R", Null(1))
	if err := d.Validate(); err == nil {
		t.Fatal("missing domain not detected")
	}
	if err := d.SetDomain(1, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSetDomainErrors(t *testing.T) {
	u := NewUniformDatabase([]string{"a"})
	if err := u.SetDomain(1, []string{"a"}); err == nil {
		t.Fatal("SetDomain on uniform database should fail")
	}
	d := NewDatabase()
	if err := d.SetDomain(0, []string{"a"}); err == nil {
		t.Fatal("SetDomain on null 0 should fail")
	}
}

func TestUniformDomainDedup(t *testing.T) {
	u := NewUniformDatabase([]string{"a", "b", "a"})
	if got := u.UniformDomain(); len(got) != 2 {
		t.Fatalf("domain not deduplicated: %v", got)
	}
}

func TestNumValuations(t *testing.T) {
	d := NewDatabase()
	d.MustAddFact("R", Null(1), Null(2))
	d.SetDomain(1, []string{"a", "b", "c"})
	d.SetDomain(2, []string{"a", "b"})
	n, err := d.NumValuations()
	if err != nil {
		t.Fatal(err)
	}
	if n.Cmp(big.NewInt(6)) != 0 {
		t.Fatalf("NumValuations = %v, want 6", n)
	}
}

func TestForEachValuationCount(t *testing.T) {
	d := NewUniformDatabase([]string{"0", "1"})
	d.MustAddFact("R", Null(1), Null(2), Null(3))
	count := 0
	seen := make(map[string]bool)
	err := d.ForEachValuation(func(v Valuation) bool {
		count++
		seen[v.String()] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 8 || len(seen) != 8 {
		t.Fatalf("enumerated %d valuations (%d distinct), want 8", count, len(seen))
	}
}

func TestForEachValuationNoNulls(t *testing.T) {
	d := NewDatabase()
	d.MustAddFact("R", Const("a"))
	count := 0
	if err := d.ForEachValuation(func(v Valuation) bool {
		if len(v) != 0 {
			t.Fatalf("unexpected assignments: %v", v)
		}
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("expected exactly one empty valuation, got %d", count)
	}
}

func TestForEachValuationEmptyDomain(t *testing.T) {
	d := NewUniformDatabase(nil)
	d.MustAddFact("R", Null(1))
	count := 0
	if err := d.ForEachValuation(func(Valuation) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("empty domain should give 0 valuations, got %d", count)
	}
}

func TestForEachValuationEarlyStop(t *testing.T) {
	d := NewUniformDatabase([]string{"a", "b"})
	d.MustAddFact("R", Null(1), Null(2))
	count := 0
	d.ForEachValuation(func(Valuation) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("early stop failed: %d calls", count)
	}
}

// TestExample21 reproduces Example 2.1 of the paper.
func TestExample21(t *testing.T) {
	d := NewDatabase()
	d.MustAddFact("S", Null(1), Null(1))
	d.MustAddFact("S", Const("a"), Null(2))
	d.SetDomain(1, []string{"a", "b"})
	d.SetDomain(2, []string{"a", "c"})

	if d.IsCodd() {
		t.Fatal("the database of Example 2.1 is not a Codd table")
	}

	nu1 := Valuation{1: "b", 2: "c"}
	inst := d.Apply(nu1)
	if !inst.Has("S", "b", "b") || !inst.Has("S", "a", "c") || inst.Size() != 2 {
		t.Fatalf("ν1(T) wrong: %v", inst)
	}

	nu2 := Valuation{1: "a", 2: "a"}
	inst2 := d.Apply(nu2)
	if !inst2.Has("S", "a", "a") || inst2.Size() != 1 {
		t.Fatalf("ν2(T) should be {S(a,a)}: %v", inst2)
	}

	// ν mapping both nulls to b is not a valuation: b ∉ dom(?2).
	bad := Valuation{1: "b", 2: "b"}
	if bad.IsValuationOf(d) {
		t.Fatal("ν(⊥2)=b should not be a valuation")
	}
	if !nu1.IsValuationOf(d) || !nu2.IsValuationOf(d) {
		t.Fatal("ν1/ν2 should be valuations")
	}
}

// TestExample22Completions reproduces the valuation/completion counts of
// Example 2.2 (Figure 1): 6 valuations, 5 distinct completions.
func TestExample22Completions(t *testing.T) {
	d := NewDatabase()
	d.MustAddFact("S", Const("a"), Const("b"))
	d.MustAddFact("S", Null(1), Const("a"))
	d.MustAddFact("S", Const("a"), Null(2))
	d.SetDomain(1, []string{"a", "b", "c"})
	d.SetDomain(2, []string{"a", "b"})

	total, err := d.NumValuations()
	if err != nil {
		t.Fatal(err)
	}
	if total.Cmp(big.NewInt(6)) != 0 {
		t.Fatalf("total valuations = %v, want 6", total)
	}

	comps := make(map[string]bool)
	d.ForEachValuation(func(v Valuation) bool {
		comps[d.Apply(v).CanonicalKey()] = true
		return true
	})
	// Figure 1 shows 6 valuations; (a,a) and (c,a)... each yields a distinct
	// database except ν(⊥1)=a,ν(⊥2)=a and ν(⊥1)=a,ν(⊥2)=b collapsing? No:
	// the figure lists completions {ab,aa}, {ab,aa}?; exactly: (a,a)->{ab,aa},
	// (a,b)->{ab,aa}... Figure 1 shows (a,a) and (a,b) giving {S(a,b),S(a,a)}
	// and {S(a,b),S(a,a)} respectively -- wait, (a,b): S(a,a),S(a,b) too.
	// Distinct completions: {ab,aa}, {ab,ba,aa}, {ab,ba}, {ab,ca,aa}, {ab,ca}.
	if len(comps) != 5 {
		t.Fatalf("distinct completions = %d, want 5", len(comps))
	}
}

func TestApplyPanicsOnMissingNull(t *testing.T) {
	d := NewDatabase()
	d.MustAddFact("R", Null(1))
	defer func() {
		if recover() == nil {
			t.Fatal("Apply with incomplete valuation did not panic")
		}
	}()
	d.Apply(Valuation{})
}

func TestInstanceBasics(t *testing.T) {
	i := NewInstance()
	i.Add("R", "a", "b")
	i.Add("R", "a", "b")
	i.Add("S", "c")
	if i.Size() != 2 {
		t.Fatalf("Size = %d, want 2", i.Size())
	}
	if !i.Has("R", "a", "b") || i.Has("R", "b", "a") {
		t.Fatal("Has wrong")
	}
	rels := i.Relations()
	if len(rels) != 2 || rels[0] != "R" || rels[1] != "S" {
		t.Fatalf("Relations = %v", rels)
	}
}

func TestInstanceCanonicalKeyOrderIndependent(t *testing.T) {
	a := NewInstance()
	a.Add("R", "x")
	a.Add("R", "y")
	b := NewInstance()
	b.Add("R", "y")
	b.Add("R", "x")
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Fatal("canonical keys differ for equal instances")
	}
	c := NewInstance()
	c.Add("R", "x")
	if a.CanonicalKey() == c.CanonicalKey() {
		t.Fatal("canonical keys equal for different instances")
	}
}

func TestInstanceContains(t *testing.T) {
	a := NewInstance()
	a.Add("R", "x")
	a.Add("R", "y")
	b := NewInstance()
	b.Add("R", "x")
	if !a.Contains(b) || b.Contains(a) {
		t.Fatal("Contains wrong")
	}
}

func TestDatabaseCloneIndependent(t *testing.T) {
	d := NewDatabase()
	d.MustAddFact("R", Null(1))
	d.SetDomain(1, []string{"a"})
	c := d.Clone()
	c.MustAddFact("R", Null(2))
	c.SetDomain(2, []string{"b"})
	if len(d.Facts()) != 1 || len(c.Facts()) != 2 {
		t.Fatal("clone not independent")
	}
	if d.Uniform() != c.Uniform() {
		t.Fatal("clone changed uniformity")
	}
	u := NewUniformDatabase([]string{"x"})
	u.MustAddFact("R", Null(1))
	cu := u.Clone()
	if !cu.Uniform() || cu.UniformDomain()[0] != "x" {
		t.Fatal("uniform clone wrong")
	}
}

func TestParseDatabaseNonUniform(t *testing.T) {
	src := `
# a comment
dom ?1 a b
dom ?2 a c
S(?1, ?1)
S(a, ?2)
`
	d, err := ParseDatabaseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if d.Uniform() {
		t.Fatal("parsed database should be non-uniform")
	}
	if len(d.Facts()) != 2 {
		t.Fatalf("facts = %d", len(d.Facts()))
	}
	if got := d.Domain(2); len(got) != 2 || got[1] != "c" {
		t.Fatalf("dom(?2) = %v", got)
	}
	// Round trip through String.
	d2, err := ParseDatabaseString(d.String())
	if err != nil {
		t.Fatal(err)
	}
	if d2.String() != d.String() {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", d.String(), d2.String())
	}
}

func TestParseDatabaseUniform(t *testing.T) {
	d, err := ParseDatabaseString("uniform 0 1\nR(?1, ?2)\n")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Uniform() || len(d.UniformDomain()) != 2 {
		t.Fatal("uniform parse wrong")
	}
}

func TestParseDatabaseErrors(t *testing.T) {
	bad := []string{
		"uniform a\nuniform b\n",
		"uniform a\ndom ?1 a\n",
		"dom ?1 a\nuniform b\n",
		"dom\n",
		"dom x a\n",
		"R(\n",
		"R(a)\nR(a, b)\n",
	}
	for _, src := range bad {
		if _, err := ParseDatabaseString(src); err == nil {
			t.Errorf("ParseDatabaseString(%q) should fail", src)
		}
	}
}

func TestFactsOfAndRelations(t *testing.T) {
	d := NewDatabase()
	d.MustAddFact("R", Const("a"))
	d.MustAddFact("S", Const("b"))
	d.MustAddFact("R", Const("c"))
	if got := d.FactsOf("R"); len(got) != 2 {
		t.Fatalf("FactsOf(R) = %v", got)
	}
	if got := d.Relations(); len(got) != 2 || got[0] != "R" || got[1] != "S" {
		t.Fatalf("Relations = %v", got)
	}
	if d.Arity("R") != 1 || d.Arity("missing") != 0 {
		t.Fatal("Arity wrong")
	}
}

func TestNullsSortedAndHasNull(t *testing.T) {
	d := NewUniformDatabase([]string{"a"})
	d.MustAddFact("R", Null(5))
	d.MustAddFact("R", Null(2))
	d.MustAddFact("R", Null(9))
	ns := d.Nulls()
	if len(ns) != 3 || ns[0] != 2 || ns[1] != 5 || ns[2] != 9 {
		t.Fatalf("Nulls = %v", ns)
	}
	if !d.HasNull(5) || d.HasNull(1) {
		t.Fatal("HasNull wrong")
	}
}

func TestValuationStringAndClone(t *testing.T) {
	v := Valuation{2: "b", 1: "a"}
	if got := v.String(); got != "{?1→a, ?2→b}" {
		t.Fatalf("Valuation.String = %q", got)
	}
	c := v.Clone()
	c[1] = "z"
	if v[1] != "a" {
		t.Fatal("Clone not independent")
	}
}

func TestDatabaseStringStable(t *testing.T) {
	d := NewUniformDatabase([]string{"a", "b"})
	d.MustAddFact("R", Null(1), Const("a"))
	want := "uniform a b\nR(?1, a)\n"
	if d.String() != want {
		t.Fatalf("String = %q, want %q", d.String(), want)
	}
}

func TestApplySetSemanticsCollapse(t *testing.T) {
	// Two facts that collapse under a valuation.
	d := NewUniformDatabase([]string{"a"})
	d.MustAddFact("R", Null(1))
	d.MustAddFact("R", Const("a"))
	inst := d.Apply(Valuation{1: "a"})
	if inst.Size() != 1 {
		t.Fatalf("set semantics violated: %d facts", inst.Size())
	}
}

func TestFactStringsParseableWhitespace(t *testing.T) {
	f, err := ParseFact("  R( a ,  ?2 )  ")
	if err != nil {
		t.Fatal(err)
	}
	if f.String() != "R(a, ?2)" {
		t.Fatalf("got %q", f.String())
	}
}
