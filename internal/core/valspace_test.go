package core

import (
	"math/big"
	"math/rand"
	"testing"
)

func spaceTestDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	db.MustAddFact("R", Null(1), Null(2))
	db.MustAddFact("S", Null(3), Const("a"))
	db.SetDomain(1, []string{"a", "b", "c"})
	db.SetDomain(2, []string{"x", "y"})
	db.SetDomain(3, []string{"p", "q", "r", "s"})
	return db
}

// TestValuationSpaceAtMatchesEnumeration: At(i) for i = 0..Size-1 yields
// exactly the ForEachValuation sequence.
func TestValuationSpaceAtMatchesEnumeration(t *testing.T) {
	db := spaceTestDB(t)
	s, err := db.ValuationSpace()
	if err != nil {
		t.Fatal(err)
	}
	if s.Size().Cmp(big.NewInt(24)) != 0 {
		t.Fatalf("size %v, want 24", s.Size())
	}
	var enumerated []Valuation
	db.ForEachValuation(func(v Valuation) bool {
		enumerated = append(enumerated, v.Clone())
		return true
	})
	if len(enumerated) != 24 {
		t.Fatalf("enumerated %d valuations", len(enumerated))
	}
	for i, want := range enumerated {
		got, err := s.At(big.NewInt(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Fatalf("At(%d) = %v, enumeration has %v", i, got, want)
		}
	}
}

// TestValuationSpaceRangeConcatenation: splitting [0, Size) into arbitrary
// contiguous chunks and concatenating the chunk enumerations reproduces the
// full enumeration — the property parallel sharding relies on.
func TestValuationSpaceRangeConcatenation(t *testing.T) {
	db := spaceTestDB(t)
	s, err := db.ValuationSpace()
	if err != nil {
		t.Fatal(err)
	}
	var full []string
	s.Range(big.NewInt(0), s.Size(), func(v Valuation) bool {
		full = append(full, v.String())
		return true
	})
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		var chunked []string
		lo := int64(0)
		for lo < 24 {
			hi := lo + 1 + int64(r.Intn(int(24-lo)))
			err := s.Range(big.NewInt(lo), big.NewInt(hi), func(v Valuation) bool {
				chunked = append(chunked, v.String())
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			lo = hi
		}
		if len(chunked) != len(full) {
			t.Fatalf("chunked %d valuations, want %d", len(chunked), len(full))
		}
		for i := range full {
			if chunked[i] != full[i] {
				t.Fatalf("trial %d: chunked[%d] = %s, want %s", trial, i, chunked[i], full[i])
			}
		}
	}
}

func TestValuationSpaceBounds(t *testing.T) {
	db := spaceTestDB(t)
	s, _ := db.ValuationSpace()
	if _, err := s.At(big.NewInt(-1)); err == nil {
		t.Error("At(-1) accepted")
	}
	if _, err := s.At(big.NewInt(24)); err == nil {
		t.Error("At(Size) accepted")
	}
	if err := s.Range(big.NewInt(3), big.NewInt(2), nil); err == nil {
		t.Error("Range with lo > hi accepted")
	}
	if err := s.Range(big.NewInt(0), big.NewInt(25), nil); err == nil {
		t.Error("Range beyond Size accepted")
	}
	// Empty interval is fine and calls nothing.
	if err := s.Range(big.NewInt(5), big.NewInt(5), nil); err != nil {
		t.Error(err)
	}
}

// TestValuationSpaceNoNulls: a database without nulls has exactly one
// (empty) valuation at index 0.
func TestValuationSpaceNoNulls(t *testing.T) {
	db := NewDatabase()
	db.MustAddFact("R", Const("a"))
	s, err := db.ValuationSpace()
	if err != nil {
		t.Fatal(err)
	}
	if s.Size().Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("size %v, want 1", s.Size())
	}
	v, err := s.At(big.NewInt(0))
	if err != nil || len(v) != 0 {
		t.Fatalf("At(0) = %v, err %v", v, err)
	}
	calls := 0
	s.Range(big.NewInt(0), big.NewInt(1), func(Valuation) bool { calls++; return true })
	if calls != 1 {
		t.Fatalf("Range visited %d valuations, want 1", calls)
	}
}

// TestValuationSpaceEmptyDomain: an empty domain empties the whole space.
func TestValuationSpaceEmptyDomain(t *testing.T) {
	db := NewDatabase()
	db.MustAddFact("R", Null(1), Null(2))
	db.SetDomain(1, []string{"a", "b"})
	db.SetDomain(2, nil)
	s, err := db.ValuationSpace()
	if err != nil {
		t.Fatal(err)
	}
	if s.Size().Sign() != 0 {
		t.Fatalf("size %v, want 0", s.Size())
	}
	if _, err := s.Sample(rand.New(rand.NewSource(1)), nil); err == nil {
		t.Error("Sample on empty space accepted")
	}
	s.Range(big.NewInt(0), big.NewInt(0), func(Valuation) bool {
		t.Fatal("Range on empty space called fn")
		return false
	})
}

// TestValuationSpaceSample: samples are valid valuations, and every index
// is eventually hit (uniformity smoke test on a small space).
func TestValuationSpaceSample(t *testing.T) {
	db := spaceTestDB(t)
	s, _ := db.ValuationSpace()
	r := rand.New(rand.NewSource(11))
	seen := map[string]bool{}
	var v Valuation
	var err error
	for i := 0; i < 2000; i++ {
		v, err = s.Sample(r, v)
		if err != nil {
			t.Fatal(err)
		}
		if !v.IsValuationOf(db) {
			t.Fatalf("sampled %v is not a valuation of the database", v)
		}
		seen[v.String()] = true
	}
	if len(seen) != 24 {
		t.Fatalf("2000 samples hit %d/24 valuations", len(seen))
	}
}

// TestValuationSpaceIsSnapshot: the space is unaffected by later mutation
// of the database.
func TestValuationSpaceIsSnapshot(t *testing.T) {
	db := NewDatabase()
	db.MustAddFact("R", Null(1))
	db.SetDomain(1, []string{"a", "b"})
	s, _ := db.ValuationSpace()
	db.MustAddFact("R", Null(2))
	db.SetDomain(2, []string{"c"})
	if s.Size().Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("snapshot size changed: %v", s.Size())
	}
}
