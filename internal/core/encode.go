package core

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseDatabase reads the textual database format produced by
// Database.String:
//
//	# comment lines and blank lines are ignored
//	uniform a b c        -- declares a uniform database with domain {a,b,c}
//	dom ?1 a b           -- declares the domain of null ?1 (non-uniform)
//	R(a, ?1)             -- a fact
//
// A database is uniform if and only if a "uniform" line appears (it must
// appear before any "dom" line; the two kinds are mutually exclusive).
func ParseDatabase(r io.Reader) (*Database, error) {
	var db *Database
	ensureUniform := func(dom []string) error {
		if db != nil {
			return fmt.Errorf("core: duplicate or late 'uniform' declaration")
		}
		db = NewUniformDatabase(dom)
		return nil
	}
	ensureNonUniform := func() error {
		if db == nil {
			db = NewDatabase()
			return nil
		}
		if db.Uniform() {
			return fmt.Errorf("core: 'dom' declaration in a uniform database")
		}
		return nil
	}
	ensureAny := func() {
		if db == nil {
			db = NewDatabase()
		}
	}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "uniform"):
			fields := strings.Fields(line)
			if err := ensureUniform(fields[1:]); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
		case strings.HasPrefix(line, "dom "):
			fields := strings.Fields(line)
			if len(fields) < 2 {
				return nil, fmt.Errorf("line %d: malformed dom declaration", lineNo)
			}
			if err := ensureNonUniform(); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			v, err := ParseValue(fields[1])
			if err != nil || !v.IsNull() {
				return nil, fmt.Errorf("line %d: dom expects a null, got %q", lineNo, fields[1])
			}
			if err := db.SetDomain(v.NullID(), fields[2:]); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
		default:
			ensureAny()
			f, err := ParseFact(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			if err := db.AddFact(f.Rel, f.Args...); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if db == nil {
		db = NewDatabase()
	}
	return db, nil
}

// ParseDatabaseString is ParseDatabase over a string.
func ParseDatabaseString(s string) (*Database, error) {
	return ParseDatabase(strings.NewReader(s))
}
