package core

import "fmt"

// The mutation log of a Database: every effective mutation (a fact
// actually added or removed, a domain actually extended or replaced)
// bumps a monotone version counter and appends a Delta record. Consumers
// that maintain derived state — the compiled sweep engines of
// internal/sweep, the plan and factor caches of internal/solver — read
// the records since the version they last saw (DeltasSince) and patch
// themselves instead of rebuilding from scratch. The log is bounded; a
// consumer that fell too far behind is told so and rebuilds.

// DeltaOp identifies what kind of mutation a Delta records.
type DeltaOp int

const (
	// DeltaAddFact records a fact added to the table (Fact is set).
	DeltaAddFact DeltaOp = iota + 1
	// DeltaRemoveFact records a fact removed from the table (Fact is set).
	DeltaRemoveFact
	// DeltaExtendDomain records values appended to one null's domain
	// (Null and Added are set). Added holds only the genuinely new values.
	DeltaExtendDomain
	// DeltaExtendUniform records values appended to the shared domain of a
	// uniform database (Added is set) — every null's domain grew at once.
	DeltaExtendUniform
	// DeltaSetDomain records a wholesale domain replacement (Null is set).
	// It is not incrementally maintainable: consumers should rebuild.
	DeltaSetDomain
)

// String names the operation.
func (op DeltaOp) String() string {
	switch op {
	case DeltaAddFact:
		return "add-fact"
	case DeltaRemoveFact:
		return "remove-fact"
	case DeltaExtendDomain:
		return "extend-domain"
	case DeltaExtendUniform:
		return "extend-uniform-domain"
	case DeltaSetDomain:
		return "set-domain"
	default:
		return "unknown"
	}
}

// Delta is one recorded mutation. Version is the database version the
// mutation produced, so a consumer at version v needs exactly the deltas
// with Version > v, in order.
type Delta struct {
	Op      DeltaOp
	Version uint64

	// Fact is the fact added or removed (DeltaAddFact, DeltaRemoveFact).
	Fact Fact

	// Null is the affected null (DeltaExtendDomain, DeltaSetDomain).
	Null NullID

	// Added holds the values appended to the domain, new values only
	// (DeltaExtendDomain, DeltaExtendUniform).
	Added []string
}

// maxDeltaLog bounds the retained mutation log. A consumer further behind
// than the oldest retained delta gets ok=false from DeltasSince and must
// rebuild; the bound keeps a long-lived mutable database from accreting
// its whole history.
const maxDeltaLog = 4096

// Version returns the database's monotone version counter: 0 at
// construction, incremented by every effective mutation (AddFact of a new
// fact, RemoveFact of a present fact, an actual domain extension or
// replacement). No-op mutations (duplicate adds, absent removes, already
// known domain values) do not change it.
func (d *Database) Version() uint64 { return d.version }

// DeltasSince returns the mutation records after version v, in order.
// ok is false when v is ahead of the database or the records have been
// trimmed from the bounded log — the caller must then rebuild its derived
// state from the database itself. The returned slice is shared; callers
// must not modify it.
func (d *Database) DeltasSince(v uint64) (deltas []Delta, ok bool) {
	if v > d.version {
		return nil, false
	}
	if v == d.version {
		return nil, true
	}
	if v < d.logBase {
		return nil, false
	}
	// Deltas are appended with consecutive versions logBase+1, logBase+2,
	// …, version, so the wanted suffix starts at offset v − logBase.
	return d.log[v-d.logBase:], true
}

// record appends a mutation record at the next version, trimming the log
// to its bound.
func (d *Database) record(delta Delta) {
	d.version++
	delta.Version = d.version
	d.log = append(d.log, delta)
	if len(d.log) > maxDeltaLog {
		drop := len(d.log) - maxDeltaLog
		d.log = append(d.log[:0:0], d.log[drop:]...)
		d.logBase = d.log[0].Version - 1
	}
}

// RemoveFact removes the fact rel(args...) from the table, reporting
// whether it was present. Facts() order of the remaining facts, the
// per-relation index and the relation's arity registration are all
// preserved (an empty relation keeps its arity, so re-adding with a
// different arity still fails).
func (d *Database) RemoveFact(rel string, args ...Value) bool {
	f := Fact{Rel: rel, Args: args}
	k := f.Key()
	i, ok := d.keys[k]
	if !ok {
		return false
	}
	removed := d.facts[i]
	d.facts = append(d.facts[:i], d.facts[i+1:]...)
	delete(d.keys, k)
	for k2, idx := range d.keys {
		if idx > i {
			d.keys[k2] = idx - 1
		}
	}
	rf := d.byRel[rel]
	for j := range rf {
		if rf[j].Key() == k {
			d.byRel[rel] = append(rf[:j], rf[j+1:]...)
			break
		}
	}
	for _, a := range removed.Args {
		if a.IsNull() {
			n := a.NullID()
			d.nullRefs[n]--
			if d.nullRefs[n] <= 0 {
				delete(d.nullRefs, n)
				d.nullsCache = nil
			}
		}
	}
	d.record(Delta{Op: DeltaRemoveFact, Fact: removed})
	return true
}

// ExtendDomain appends vals to the domain of null n in a non-uniform
// database, keeping order and skipping values already present. Extending
// a null that has no domain yet creates one. Only genuinely new values
// count as a mutation (and appear in the delta record).
func (d *Database) ExtendDomain(n NullID, vals ...string) error {
	if d.uniform {
		return fmt.Errorf("core: ExtendDomain on a uniform database (null %s); use ExtendUniformDomain", n)
	}
	if n <= 0 {
		return fmt.Errorf("core: ExtendDomain on invalid null id %d", n)
	}
	cur, had := d.doms[n]
	added := newValues(cur, vals)
	if len(added) == 0 {
		if !had {
			d.doms[n] = []string{}
		}
		return nil
	}
	d.doms[n] = append(cur, added...)
	d.record(Delta{Op: DeltaExtendDomain, Null: n, Added: added})
	return nil
}

// ExtendUniformDomain appends vals to the shared domain of a uniform
// database — every null's domain grows at once. Values already present
// are skipped; only genuinely new values count as a mutation.
func (d *Database) ExtendUniformDomain(vals ...string) error {
	if !d.uniform {
		return fmt.Errorf("core: ExtendUniformDomain on a non-uniform database")
	}
	added := newValues(d.uniDom, vals)
	if len(added) == 0 {
		return nil
	}
	d.uniDom = append(d.uniDom, added...)
	d.record(Delta{Op: DeltaExtendUniform, Added: added})
	return nil
}

// newValues returns the members of vals not already in cur, deduplicated,
// in first-occurrence order.
func newValues(cur, vals []string) []string {
	seen := make(map[string]bool, len(cur)+len(vals))
	for _, v := range cur {
		seen[v] = true
	}
	var added []string
	for _, v := range vals {
		if !seen[v] {
			seen[v] = true
			added = append(added, v)
		}
	}
	return added
}
