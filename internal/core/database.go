package core

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// Database is an incomplete database D = (T, dom): a naïve table T (a set of
// facts over constants and nulls) together with a finite domain for each
// null. A Database is either non-uniform (each null carries its own domain,
// set via SetDomain) or uniform (a single domain shared by all nulls, fixed
// at construction time via NewUniformDatabase).
//
// A Database is mutable: facts can be added (AddFact) and removed
// (RemoveFact), and domains can be extended (ExtendDomain,
// ExtendUniformDomain). Every effective mutation bumps the monotone
// Version counter and appends a Delta record (see delta.go), so derived
// state elsewhere can be maintained incrementally.
//
// The zero value is not usable; use NewDatabase or NewUniformDatabase.
type Database struct {
	facts    []Fact
	keys     map[string]int    // fact key -> index into facts
	byRel    map[string][]Fact // per-relation view of facts, insertion order
	arity    map[string]int
	nullRefs map[NullID]int // occurrences per null (argument positions)

	uniform bool
	uniDom  []string            // shared domain when uniform
	doms    map[NullID][]string // per-null domains when non-uniform

	nullsCache []NullID // sorted; nil when dirty

	version uint64  // monotone mutation counter
	log     []Delta // bounded mutation log; log[i].Version == logBase+1+i
	logBase uint64  // version just before the first retained delta
}

// NewDatabase returns an empty non-uniform incomplete database. Every null
// used in a fact must be given a domain with SetDomain before the database
// is evaluated.
func NewDatabase() *Database {
	return &Database{
		keys:     make(map[string]int),
		byRel:    make(map[string][]Fact),
		arity:    make(map[string]int),
		nullRefs: make(map[NullID]int),
		doms:     make(map[NullID][]string),
	}
}

// NewUniformDatabase returns an empty uniform incomplete database whose
// nulls all range over dom. Duplicates in dom are removed; order is kept.
func NewUniformDatabase(dom []string) *Database {
	d := &Database{
		keys:     make(map[string]int),
		byRel:    make(map[string][]Fact),
		arity:    make(map[string]int),
		nullRefs: make(map[NullID]int),
		uniform:  true,
		uniDom:   dedupStrings(dom),
	}
	return d
}

func dedupStrings(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := make([]string, 0, len(in))
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// Uniform reports whether the database is uniform (all nulls share one
// domain).
func (d *Database) Uniform() bool { return d.uniform }

// UniformDomain returns the shared domain of a uniform database. It panics
// on a non-uniform database.
func (d *Database) UniformDomain() []string {
	if !d.uniform {
		panic("core: UniformDomain called on a non-uniform database")
	}
	return d.uniDom
}

// AddFact adds the fact rel(args...) to the table. Duplicate facts are
// ignored (set semantics). It returns an error if the relation was used
// before with a different arity, or if the fact has arity zero.
func (d *Database) AddFact(rel string, args ...Value) error {
	if len(args) == 0 {
		return fmt.Errorf("core: fact over %s has arity zero", rel)
	}
	if a, ok := d.arity[rel]; ok && a != len(args) {
		return fmt.Errorf("core: relation %s used with arities %d and %d", rel, a, len(args))
	}
	f := Fact{Rel: rel, Args: append([]Value(nil), args...)}
	k := f.Key()
	if _, dup := d.keys[k]; dup {
		return nil
	}
	d.arity[rel] = len(args)
	d.keys[k] = len(d.facts)
	d.facts = append(d.facts, f)
	d.byRel[rel] = append(d.byRel[rel], f)
	for _, v := range f.Args {
		if v.IsNull() {
			n := v.NullID()
			if d.nullRefs[n] == 0 {
				d.nullsCache = nil
			}
			d.nullRefs[n]++
		}
	}
	d.record(Delta{Op: DeltaAddFact, Fact: f})
	return nil
}

// MustAddFact is AddFact that panics on error; intended for tests and
// literal database construction.
func (d *Database) MustAddFact(rel string, args ...Value) {
	if err := d.AddFact(rel, args...); err != nil {
		panic(err)
	}
}

// SetDomain assigns the domain of null n in a non-uniform database.
// Duplicates in dom are removed; order is kept. It returns an error on a
// uniform database.
func (d *Database) SetDomain(n NullID, dom []string) error {
	if d.uniform {
		return fmt.Errorf("core: SetDomain on a uniform database (null %s)", n)
	}
	if n <= 0 {
		return fmt.Errorf("core: SetDomain on invalid null id %d", n)
	}
	next := dedupStrings(dom)
	if cur, ok := d.doms[n]; ok && equalStrings(cur, next) {
		return nil
	}
	d.doms[n] = next
	// A wholesale replacement is not incrementally maintainable (values
	// may disappear or reorder); the record tells consumers to rebuild.
	d.record(Delta{Op: DeltaSetDomain, Null: n})
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Domain returns the domain of null n: the shared domain if the database is
// uniform, or the per-null domain otherwise (nil if none was set). The
// returned slice must not be modified.
func (d *Database) Domain(n NullID) []string {
	if d.uniform {
		return d.uniDom
	}
	return d.doms[n]
}

// Nulls returns the distinct nulls occurring in the table, sorted by ID.
func (d *Database) Nulls() []NullID {
	if d.nullsCache == nil {
		out := make([]NullID, 0, len(d.nullRefs))
		for n := range d.nullRefs {
			out = append(out, n)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		d.nullsCache = out
	}
	return d.nullsCache
}

// HasNull reports whether null n occurs in the table.
func (d *Database) HasNull(n NullID) bool { return d.nullRefs[n] > 0 }

// Facts returns all facts of the table, in insertion order. The returned
// slice must not be modified.
func (d *Database) Facts() []Fact { return d.facts }

// FactsOf returns the facts over relation rel, in insertion order. The
// per-relation index is maintained by AddFact, so the call is O(1) instead
// of a scan over all facts. The returned slice must not be modified.
func (d *Database) FactsOf(rel string) []Fact { return d.byRel[rel] }

// Relations returns the relation names used in the table, sorted.
func (d *Database) Relations() []string {
	out := make([]string, 0, len(d.arity))
	for r := range d.arity {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Arity returns the arity of relation rel, or 0 if the relation does not
// occur in the table.
func (d *Database) Arity(rel string) int { return d.arity[rel] }

// IsCodd reports whether the table is a Codd table, i.e. every null occurs
// at most once (counting multiple positions within one fact as multiple
// occurrences).
func (d *Database) IsCodd() bool {
	seen := make(map[NullID]bool)
	for _, f := range d.facts {
		for _, a := range f.Args {
			if a.IsNull() {
				if seen[a.NullID()] {
					return false
				}
				seen[a.NullID()] = true
			}
		}
	}
	return true
}

// Validate checks that every null occurring in the table has a domain
// (always true for uniform databases) and that no domain is empty while the
// null occurs in a fact with an empty domain being permitted (it simply
// yields zero valuations). It returns the first problem found.
func (d *Database) Validate() error {
	if d.uniform {
		return nil
	}
	for _, n := range d.Nulls() {
		if _, ok := d.doms[n]; !ok {
			return fmt.Errorf("core: null %s has no domain", n)
		}
	}
	return nil
}

// NumValuations returns the total number of valuations of the database: the
// product of the domain sizes of its nulls. It returns an error if some null
// has no domain.
func (d *Database) NumValuations() (*big.Int, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	total := big.NewInt(1)
	for _, n := range d.Nulls() {
		total.Mul(total, big.NewInt(int64(len(d.Domain(n)))))
	}
	return total, nil
}

// ForEachValuation enumerates every valuation of the database and calls fn
// with each, in the index order of ValuationSpace. The Valuation passed to
// fn is reused between calls; fn must copy it (Valuation.Clone) if it
// needs to retain it. Enumeration stops early if fn returns false. It
// returns an error if some null lacks a domain.
func (d *Database) ForEachValuation(fn func(Valuation) bool) error {
	s, err := d.ValuationSpace()
	if err != nil {
		return err
	}
	return s.Range(new(big.Int), s.size, fn)
}

// Apply returns the completion ν(D) of the database under valuation v: every
// null is replaced by its image and duplicate facts collapse (set
// semantics). Nulls missing from v cause a panic; use ForEachValuation or
// complete valuations.
func (d *Database) Apply(v Valuation) *Instance {
	inst := NewInstance()
	args := make([]string, 0, 8)
	for _, f := range d.facts {
		args = args[:0]
		for _, a := range f.Args {
			if a.IsNull() {
				c, ok := v[a.NullID()]
				if !ok {
					panic(fmt.Sprintf("core: valuation missing null %s", a.NullID()))
				}
				args = append(args, c)
			} else {
				args = append(args, a.Constant())
			}
		}
		inst.Add(f.Rel, args...)
	}
	return inst
}

// Clone returns a deep copy of the database.
func (d *Database) Clone() *Database {
	var c *Database
	if d.uniform {
		c = NewUniformDatabase(d.uniDom)
	} else {
		c = NewDatabase()
		for n, dom := range d.doms {
			c.doms[n] = append([]string(nil), dom...)
		}
	}
	for _, f := range d.facts {
		c.MustAddFact(f.Rel, f.Args...)
	}
	return c
}

// String renders the database: the domain declarations followed by one fact
// per line, in a stable order.
func (d *Database) String() string {
	var b strings.Builder
	if d.uniform {
		b.WriteString("uniform " + strings.Join(d.uniDom, " ") + "\n")
	} else {
		for _, n := range d.Nulls() {
			b.WriteString("dom " + n.String() + " " + strings.Join(d.doms[n], " ") + "\n")
		}
	}
	for _, f := range d.facts {
		b.WriteString(f.String() + "\n")
	}
	return b.String()
}
