// Package reductions implements, as executable constructions, every
// hardness reduction of Arenas, Barceló and Monet, "Counting Problems over
// Incomplete Databases" (PODS 2020): Propositions 3.4, 3.5, 3.8, 3.11, 4.2,
// 4.5(a), 4.5(b) and 5.6, and Theorems 6.3 and 6.4. Each construction
// returns the incomplete database (and query) of the reduction together
// with a Recover function mapping the database count back to the source
// quantity, so the tests can validate the reduction against an independent
// exact counter for the source problem.
package reductions

import (
	"fmt"
	"math/big"

	"github.com/incompletedb/incompletedb/internal/combinat"
	"github.com/incompletedb/incompletedb/internal/core"
	"github.com/incompletedb/incompletedb/internal/cq"
	"github.com/incompletedb/incompletedb/internal/graphs"
)

// Reduction packages the output of one of the paper's reductions: an
// incomplete database, the (fixed) query of the target counting problem,
// and the arithmetic recovering the source quantity from the target count.
type Reduction struct {
	// DB is the constructed incomplete database.
	DB *core.Database
	// Query is the target problem's Boolean query.
	Query cq.Query
	// Recover maps the target count (#Val or #Comp of Query on DB,
	// depending on the reduction) to the source quantity.
	Recover func(count *big.Int) *big.Int
	// Source and Target describe the reduction for reporting.
	Source, Target string
	// Reference cites the paper.
	Reference string
}

func nodeConst(v int) string { return fmt.Sprintf("n%d", v) }
func edgeConst(e int) string { return fmt.Sprintf("e%d", e) }

// ThreeColoringToVal builds the reduction of Proposition 3.4:
// #3COL(G) = (total valuations) − #Valu(R(x,x))(D), where D has one null
// per node over the fixed domain {1,2,3} and facts R(⊥u,⊥v), R(⊥v,⊥u) per
// edge.
func ThreeColoringToVal(g *graphs.Graph) *Reduction {
	db := core.NewUniformDatabase([]string{"1", "2", "3"})
	for _, e := range g.Edges() {
		u, v := core.Null(core.NullID(e[0]+1)), core.Null(core.NullID(e[1]+1))
		db.MustAddFact("R", u, v)
		db.MustAddFact("R", v, u)
	}
	total := combinat.PowInt(3, len(db.Nulls()))
	// Isolated nodes have no null but contribute a free factor of 3 each.
	isolated := 0
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 0 {
			isolated++
		}
	}
	freeFactor := combinat.PowInt(3, isolated)
	return &Reduction{
		DB:    db,
		Query: cq.MustParseBCQ("R(x, x)"),
		Recover: func(val *big.Int) *big.Int {
			out := new(big.Int).Sub(total, val)
			return out.Mul(out, freeFactor)
		},
		Source:    "#3-colorings",
		Target:    "#Valu(R(x,x))",
		Reference: "Proposition 3.4",
	}
}

// AvoidanceToValCodd builds the reduction of Proposition 3.5 from
// #Avoidance on bipartite graphs: one null per node whose domain is its set
// of incident edges, facts R(⊥u) for left nodes and S(⊥v) for right nodes.
// #ValCd(R(x) ∧ S(x))(D) counts exactly the non-avoiding assignments, so
// #Avoidance(G) = (total valuations) − #ValCd(q)(D).
func AvoidanceToValCodd(b *graphs.Bipartite) *Reduction {
	db := core.NewDatabase()
	next := core.NullID(1)
	total := big.NewInt(1)
	addNode := func(rel string, incident []int) {
		dom := make([]string, len(incident))
		for i, e := range incident {
			dom[i] = edgeConst(e)
		}
		db.MustAddFact(rel, core.Null(next))
		db.SetDomain(next, dom)
		total.Mul(total, big.NewInt(int64(len(dom))))
		next++
	}
	edges := b.Edges()
	for l := 0; l < b.NL; l++ {
		var inc []int
		for i, e := range edges {
			if e[0] == l {
				inc = append(inc, i)
			}
		}
		addNode("R", inc)
	}
	for r := 0; r < b.NR; r++ {
		var inc []int
		for i, e := range edges {
			if e[1] == r {
				inc = append(inc, i)
			}
		}
		addNode("S", inc)
	}
	return &Reduction{
		DB:    db,
		Query: cq.MustParseBCQ("R(x) ∧ S(x)"),
		Recover: func(val *big.Int) *big.Int {
			return new(big.Int).Sub(total, val)
		},
		Source:    "#Avoidance (avoiding assignments)",
		Target:    "#ValCd(R(x) ∧ S(x))",
		Reference: "Proposition 3.5",
	}
}

// IndependentSetsToValPath builds the first reduction of Proposition 3.8:
// #IS(G) = 2^|V| − #Valu(R(x) ∧ S(x,y) ∧ T(y))(D) over the fixed domain
// {0,1}.
func IndependentSetsToValPath(g *graphs.Graph) *Reduction {
	db := core.NewUniformDatabase([]string{"0", "1"})
	for _, e := range g.Edges() {
		u, v := core.Null(core.NullID(e[0]+1)), core.Null(core.NullID(e[1]+1))
		db.MustAddFact("S", u, v)
		db.MustAddFact("S", v, u)
	}
	db.MustAddFact("R", core.Const("1"))
	db.MustAddFact("T", core.Const("1"))
	pow := combinat.PowInt(2, g.N())
	free := combinat.PowInt(2, g.N()-len(db.Nulls())) // isolated nodes
	return &Reduction{
		DB:    db,
		Query: cq.MustParseBCQ("R(x) ∧ S(x, y) ∧ T(y)"),
		Recover: func(val *big.Int) *big.Int {
			scaled := new(big.Int).Mul(val, free)
			return new(big.Int).Sub(pow, scaled)
		},
		Source:    "#IS (independent sets)",
		Target:    "#Valu(R(x) ∧ S(x,y) ∧ T(y))",
		Reference: "Proposition 3.8",
	}
}

// IndependentSetsToValRxySxy builds the second reduction of
// Proposition 3.8: #IS(G) = 2^|V| − #Valu(R(x,y) ∧ S(x,y))(D), encoding the
// graph in S and adding the single fact R(1,1).
func IndependentSetsToValRxySxy(g *graphs.Graph) *Reduction {
	db := core.NewUniformDatabase([]string{"0", "1"})
	for _, e := range g.Edges() {
		u, v := core.Null(core.NullID(e[0]+1)), core.Null(core.NullID(e[1]+1))
		db.MustAddFact("S", u, v)
		db.MustAddFact("S", v, u)
	}
	db.MustAddFact("R", core.Const("1"), core.Const("1"))
	pow := combinat.PowInt(2, g.N())
	free := combinat.PowInt(2, g.N()-len(db.Nulls()))
	return &Reduction{
		DB:    db,
		Query: cq.MustParseBCQ("R(x, y) ∧ S(x, y)"),
		Recover: func(val *big.Int) *big.Int {
			scaled := new(big.Int).Mul(val, free)
			return new(big.Int).Sub(pow, scaled)
		},
		Source:    "#IS (independent sets)",
		Target:    "#Valu(R(x,y) ∧ S(x,y))",
		Reference: "Proposition 3.8",
	}
}

// VertexCoversToCompCodd builds the parsimonious reduction of
// Proposition 4.2: #VC(G) = #CompCd(R(x))(D), with one null per edge over
// its two endpoints, one null per node over {node, a}, and the fact R(a).
func VertexCoversToCompCodd(g *graphs.Graph) *Reduction {
	db := core.NewDatabase()
	next := core.NullID(1)
	for _, e := range g.Edges() {
		db.MustAddFact("R", core.Null(next))
		db.SetDomain(next, []string{nodeConst(e[0]), nodeConst(e[1])})
		next++
	}
	for v := 0; v < g.N(); v++ {
		db.MustAddFact("R", core.Null(next))
		db.SetDomain(next, []string{nodeConst(v), "a"})
		next++
	}
	db.MustAddFact("R", core.Const("a"))
	return &Reduction{
		DB:    db,
		Query: cq.MustParseBCQ("R(x)"),
		Recover: func(comp *big.Int) *big.Int {
			return new(big.Int).Set(comp)
		},
		Source:    "#VC (vertex covers; equals #IS by complementation)",
		Target:    "#CompCd(R(x))",
		Reference: "Proposition 4.2",
	}
}

// IndependentSetsToCompUniform builds the reduction of Proposition 4.5(a):
// #Compu(q)(D) = 2^|V| + #IS(G) over the fixed domain {0,1}, for q being
// either R(x,x) or R(x,y) (every completion satisfies both).
func IndependentSetsToCompUniform(g *graphs.Graph) *Reduction {
	db := core.NewUniformDatabase([]string{"0", "1"})
	nodeNull := func(v int) core.Value { return core.Null(core.NullID(v + 1)) }
	for v := 0; v < g.N(); v++ {
		db.MustAddFact("R", core.Const(nodeConst(v)), nodeNull(v))
	}
	for _, e := range g.Edges() {
		db.MustAddFact("R", nodeNull(e[0]), nodeNull(e[1]))
		db.MustAddFact("R", nodeNull(e[1]), nodeNull(e[0]))
	}
	db.MustAddFact("R", core.Const("0"), core.Const("0"))
	db.MustAddFact("R", core.Const("0"), core.Const("1"))
	db.MustAddFact("R", core.Const("1"), core.Const("0"))
	fresh := core.NullID(g.N() + 1)
	db.MustAddFact("R", core.Null(fresh), core.Null(fresh))
	pow := combinat.PowInt(2, g.N())
	return &Reduction{
		DB:    db,
		Query: cq.MustParseBCQ("R(x, x)"),
		Recover: func(comp *big.Int) *big.Int {
			return new(big.Int).Sub(comp, pow)
		},
		Source:    "#IS (independent sets)",
		Target:    "#Compu(R(x,x)) − 2^|V|",
		Reference: "Proposition 4.5(a)",
	}
}

// PseudoforestsToCompUniformCodd builds the reduction of
// Proposition 4.5(b): #PF(G) = #CompuCd(q)(D) for a bipartite graph G,
// where D is a uniform Codd table over one binary relation and q is R(x,x)
// or R(x,y).
func PseudoforestsToCompUniformCodd(b *graphs.Bipartite) *Reduction {
	n := b.NL + b.NR
	dom := make([]string, n)
	for i := range dom {
		dom[i] = nodeConst(i)
	}
	db := core.NewUniformDatabase(dom)
	// Complementary facts: all ordered pairs over U ⊔ V that are not an
	// edge, where the paper's E is the set of ORDERED pairs (u, v) with
	// u ∈ U, v ∈ V — so the reversed pair (v, u) of an edge is itself a
	// complementary fact. Right node r is represented as node NL+r.
	isEdge := func(x, y int) bool {
		return x < b.NL && y >= b.NL && b.HasEdge(x, y-b.NL)
	}
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			if !isEdge(x, y) {
				db.MustAddFact("R", core.Const(nodeConst(x)), core.Const(nodeConst(y)))
			}
		}
	}
	next := core.NullID(1)
	for u := 0; u < b.NL; u++ {
		db.MustAddFact("R", core.Const(nodeConst(u)), core.Null(next))
		next++
	}
	for r := 0; r < b.NR; r++ {
		db.MustAddFact("R", core.Null(next), core.Const(nodeConst(b.NL+r)))
		next++
	}
	db.MustAddFact("R", core.Const("f"), core.Const("f"))
	return &Reduction{
		DB:    db,
		Query: cq.MustParseBCQ("R(x, x)"),
		Recover: func(comp *big.Int) *big.Int {
			return new(big.Int).Set(comp)
		},
		Source:    "#PF (pseudoforest edge subsets)",
		Target:    "#CompuCd(R(x,x))",
		Reference: "Proposition 4.5(b)",
	}
}

// ColorabilityGadget builds the database of Proposition 5.6: a uniform
// naïve table over one binary relation and the fixed domain {1,2,3} whose
// completion count is 8 if G is 3-colorable and 7 otherwise — the gadget
// showing #Compu admits no FPRAS unless NP = RP.
func ColorabilityGadget(g *graphs.Graph) *Reduction {
	db := core.NewUniformDatabase([]string{"1", "2", "3"})
	nodeNull := func(v int) core.Value { return core.Null(core.NullID(v + 1)) }
	for _, e := range g.Edges() {
		db.MustAddFact("R", nodeNull(e[0]), nodeNull(e[1]))
		db.MustAddFact("R", nodeNull(e[1]), nodeNull(e[0]))
	}
	for _, p := range [][2]string{{"1", "2"}, {"2", "1"}, {"2", "3"}, {"3", "2"}, {"1", "3"}, {"3", "1"}} {
		db.MustAddFact("R", core.Const(p[0]), core.Const(p[1]))
	}
	base := core.NullID(g.N() + 1)
	for i := 0; i < 3; i++ {
		a, ap := core.Null(base+core.NullID(2*i)), core.Null(base+core.NullID(2*i+1))
		db.MustAddFact("R", a, ap)
		db.MustAddFact("R", ap, a)
	}
	db.MustAddFact("R", core.Const("c"), core.Const("c"))
	return &Reduction{
		DB:    db,
		Query: cq.MustParseBCQ("R(x, x)"),
		Recover: func(comp *big.Int) *big.Int {
			// 1 iff 3-colorable: #Comp − 7.
			return new(big.Int).Sub(comp, big.NewInt(7))
		},
		Source:    "3-colorability (1 or 0)",
		Target:    "#Compu(R(x,x)) − 7",
		Reference: "Proposition 5.6",
	}
}
