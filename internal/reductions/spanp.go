package reductions

import (
	"fmt"
	"math/big"

	"github.com/incompletedb/incompletedb/internal/cnf"
	"github.com/incompletedb/incompletedb/internal/combinat"
	"github.com/incompletedb/incompletedb/internal/core"
	"github.com/incompletedb/incompletedb/internal/cq"
	"github.com/incompletedb/incompletedb/internal/graphs"
)

// ---------------------------------------------------------------------------
// Proposition 3.11: #BIS via a linear system of #ValuCd oracle calls.
// ---------------------------------------------------------------------------

// ValOracle answers #Val-type counting queries; the tests pass brute force,
// demonstrating the Turing reduction of Proposition 3.11 end to end.
type ValOracle func(db *core.Database, q *cq.BCQ) (*big.Int, error)

// BISViaLinearSystem computes the number of independent sets of the
// bipartite graph by the Turing reduction of Proposition 3.11: it builds
// (n+1)² uniform Codd databases D_{a,b}, queries the oracle for
// #ValuCd(R(x) ∧ S(x,y) ∧ T(y)) on each, forms the linear system
// C = (surj ⊗ surj)·Z over the independent-pair counts Z_{i,j}, solves it
// exactly, and returns Σ Z_{i,j}.
func BISViaLinearSystem(b *graphs.Bipartite, oracle ValOracle) (*big.Int, error) {
	// Pad the smaller side with isolated nodes so that |X| = |Y| = n; each
	// isolated node doubles the number of independent sets.
	n := b.NL
	if b.NR > n {
		n = b.NR
	}
	pad := (n - b.NL) + (n - b.NR)
	if n == 0 {
		return big.NewInt(1), nil // the empty graph has one (empty) independent set
	}
	q := cq.MustParseBCQ("R(x) ∧ S(x, y) ∧ T(y)")

	dom := make([]string, n)
	for i := range dom {
		dom[i] = fmt.Sprintf("a%d", i+1)
	}
	buildDB := func(a, bb int) *core.Database {
		db := core.NewUniformDatabase(dom)
		for _, e := range b.Edges() {
			db.MustAddFact("S", core.Const(dom[e[0]]), core.Const(dom[e[1]]))
		}
		next := core.NullID(1)
		for i := 0; i < a; i++ {
			db.MustAddFact("R", core.Null(next))
			next++
		}
		for j := 0; j < bb; j++ {
			db.MustAddFact("T", core.Null(next))
			next++
		}
		return db
	}

	// C_{a,b} = n^{a+b} − #ValuCd(q)(D_{a,b}).
	dim := (n + 1) * (n + 1)
	cvec := make([]*big.Rat, dim)
	for a := 0; a <= n; a++ {
		for bb := 0; bb <= n; bb++ {
			db := buildDB(a, bb)
			sat, err := oracle(db, q)
			if err != nil {
				return nil, fmt.Errorf("reductions: oracle failed on D_{%d,%d}: %w", a, bb, err)
			}
			total := combinat.PowInt(int64(n), a+bb)
			c := new(big.Int).Sub(total, sat)
			cvec[a*(n+1)+bb] = new(big.Rat).SetInt(c)
		}
	}
	// A_{(a,b),(i,j)} = surj(a→i)·surj(b→j).
	mat := make([][]*big.Rat, dim)
	for a := 0; a <= n; a++ {
		for bb := 0; bb <= n; bb++ {
			row := make([]*big.Rat, dim)
			for i := 0; i <= n; i++ {
				for j := 0; j <= n; j++ {
					v := new(big.Int).Mul(combinat.Surjections(a, i), combinat.Surjections(bb, j))
					row[i*(n+1)+j] = new(big.Rat).SetInt(v)
				}
			}
			mat[a*(n+1)+bb] = row
		}
	}
	z, err := combinat.SolveRatSystem(mat, cvec)
	if err != nil {
		return nil, fmt.Errorf("reductions: surjection system: %w", err)
	}
	sum := new(big.Rat)
	for _, zi := range z {
		sum.Add(sum, zi)
	}
	total, ok := combinat.RatIsInt(sum)
	if !ok {
		return nil, fmt.Errorf("reductions: non-integral #BIS %v", sum)
	}
	// Undo the padding: each padding node doubled the count.
	if pad > 0 {
		den := combinat.PowInt(2, pad)
		rem := new(big.Int)
		total.QuoRem(total, den, rem)
		if rem.Sign() != 0 {
			return nil, fmt.Errorf("reductions: padding factor does not divide the count")
		}
	}
	return total, nil
}

// ---------------------------------------------------------------------------
// Theorem 6.3: #k3SAT = #Compu(¬q) for a fixed sjfBCQ q.
// ---------------------------------------------------------------------------

// k3satRelName names the ternary relation C_abc.
func k3satRelName(a, b, c int) string { return fmt.Sprintf("C%d%d%d", a, b, c) }

// K3SATQuery returns the fixed sjfBCQ q of Equation (8) in Theorem 6.3:
// S(xs, ys) ∧ ⋀_{(a,b,c) ∈ {0,1}³} C_abc(x, y, z).
func K3SATQuery() *cq.BCQ {
	atoms := []cq.Atom{{Rel: "S", Vars: []string{"xs", "ys"}}}
	for a := 0; a <= 1; a++ {
		for b := 0; b <= 1; b++ {
			for c := 0; c <= 1; c++ {
				atoms = append(atoms, cq.Atom{Rel: k3satRelName(a, b, c), Vars: []string{"x", "y", "z"}})
			}
		}
	}
	return &cq.BCQ{Atoms: atoms}
}

// K3SATToCompNeg builds the parsimonious reduction of Theorem 6.3:
// #k3SAT(F, k) = #Compu(¬q)(D) where q = K3SATQuery(). The database D has
// one null per propositional variable over the fixed domain {0,1}; each
// relation C_abc holds the seven tuples agreeing with (a,b,c) in some
// position, each clause adds its null tuple to the relation matching its
// signs, and S pairs the first k variables with position constants so that
// completions are distinguished exactly by those variables.
func K3SATToCompNeg(f *cnf.Formula, k int) (*Reduction, error) {
	if k < 1 || k > f.NumVars {
		return nil, fmt.Errorf("reductions: prefix length %d out of range 1..%d", k, f.NumVars)
	}
	db := core.NewUniformDatabase([]string{"0", "1"})
	for a := 0; a <= 1; a++ {
		for b := 0; b <= 1; b++ {
			for c := 0; c <= 1; c++ {
				rel := k3satRelName(a, b, c)
				for ap := 0; ap <= 1; ap++ {
					for bp := 0; bp <= 1; bp++ {
						for cp := 0; cp <= 1; cp++ {
							if a == ap || b == bp || c == cp {
								db.MustAddFact(rel,
									core.Const(fmt.Sprint(ap)),
									core.Const(fmt.Sprint(bp)),
									core.Const(fmt.Sprint(cp)))
							}
						}
					}
				}
			}
		}
	}
	varNull := func(v int) core.Value { return core.Null(core.NullID(v)) } // variables are 1-based
	for _, cl := range f.Clauses {
		signs := [3]int{}
		args := make([]core.Value, 3)
		for i, l := range cl {
			if l.Positive() {
				signs[i] = 1
			}
			args[i] = varNull(l.Var())
		}
		db.MustAddFact(k3satRelName(signs[0], signs[1], signs[2]), args...)
	}
	for i := 1; i <= k; i++ {
		db.MustAddFact("S", core.Const(fmt.Sprintf("p%d", i)), varNull(i))
	}
	return &Reduction{
		DB:    db,
		Query: &cq.Negation{Inner: K3SATQuery()},
		Recover: func(comp *big.Int) *big.Int {
			return new(big.Int).Set(comp)
		},
		Source:    fmt.Sprintf("#k3SAT with k=%d", k),
		Target:    "#Compu(¬q)",
		Reference: "Theorem 6.3",
	}, nil
}

// PadForK3SATQuery implements the padding of Lemma D.1: adding the facts
// S(f,f) and C_abc(f,f,f) for a fresh constant f yields a database D' with
// #Compu(σ)(D) = #Compu(q)(D'), since every completion of D' satisfies q
// and completions correspond one-to-one.
func PadForK3SATQuery(db *core.Database) (*core.Database, error) {
	const fresh = "fpad"
	out := db.Clone()
	for _, f := range db.Facts() {
		for _, arg := range f.Args {
			if !arg.IsNull() && arg.Constant() == fresh {
				return nil, fmt.Errorf("reductions: constant %q already occurs in the database", fresh)
			}
		}
	}
	if err := out.AddFact("S", core.Const(fresh), core.Const(fresh)); err != nil {
		return nil, err
	}
	for a := 0; a <= 1; a++ {
		for b := 0; b <= 1; b++ {
			for c := 0; c <= 1; c++ {
				if err := out.AddFact(k3satRelName(a, b, c), core.Const(fresh), core.Const(fresh), core.Const(fresh)); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Theorem 6.4: #HamSubgraphs = #Valu(q) for a query with NP model checking.
// ---------------------------------------------------------------------------

// HamSubgraphsQuery returns the existential second-order Boolean query of
// Theorem 6.4, implemented directly as a model-checking function: it holds
// in an instance iff the set S = {v : T(v,1)} has exactly |K| elements and
// the subgraph of the R-relation induced by S is Hamiltonian.
func HamSubgraphsQuery() cq.Query {
	return &cq.Func{
		Name: "∃S (|S| = |K| ∧ S = {v : T(v,1)} ∧ Hamiltonian(R[S]))",
		F: func(inst *core.Instance) bool {
			want := len(inst.Tuples("K"))
			var nodes []string
			for _, t := range inst.Tuples("T") {
				if len(t) == 2 && t[1] == "1" {
					nodes = append(nodes, t[0])
				}
			}
			if len(nodes) != want {
				return false
			}
			idx := make(map[string]int, len(nodes))
			for i, v := range nodes {
				idx[v] = i
			}
			g := graphs.NewGraph(len(nodes))
			for _, t := range inst.Tuples("R") {
				if len(t) != 2 || t[0] == t[1] {
					continue
				}
				i, ok1 := idx[t[0]]
				j, ok2 := idx[t[1]]
				if ok1 && ok2 {
					g.MustAddEdge(i, j)
				}
			}
			return graphs.IsHamiltonian(g)
		},
	}
}

// HamSubgraphsToVal builds the parsimonious reduction of Theorem 6.4:
// #HamSubgraphs(G, k) = #Valu(q)(D) where q = HamSubgraphsQuery(). D holds
// the graph as constants in R, one {0,1}-null per node in T, and k facts in
// K; valuations correspond to node subsets.
func HamSubgraphsToVal(g *graphs.Graph, k int) (*Reduction, error) {
	if k < 0 || k > g.N() {
		return nil, fmt.Errorf("reductions: subset size %d out of range 0..%d", k, g.N())
	}
	db := core.NewUniformDatabase([]string{"0", "1"})
	for _, e := range g.Edges() {
		db.MustAddFact("R", core.Const(nodeConst(e[0])), core.Const(nodeConst(e[1])))
		db.MustAddFact("R", core.Const(nodeConst(e[1])), core.Const(nodeConst(e[0])))
	}
	for v := 0; v < g.N(); v++ {
		db.MustAddFact("T", core.Const(nodeConst(v)), core.Null(core.NullID(v+1)))
	}
	for j := 1; j <= k; j++ {
		db.MustAddFact("K", core.Const(fmt.Sprintf("k%d", j)))
	}
	return &Reduction{
		DB:    db,
		Query: HamSubgraphsQuery(),
		Recover: func(val *big.Int) *big.Int {
			return new(big.Int).Set(val)
		},
		Source:    fmt.Sprintf("#HamSubgraphs with k=%d", k),
		Target:    "#Valu(q_∃SO)",
		Reference: "Theorem 6.4",
	}, nil
}
