package reductions

import (
	"math/big"
	"math/rand"
	"testing"

	"github.com/incompletedb/incompletedb/internal/cnf"
	"github.com/incompletedb/incompletedb/internal/core"
	"github.com/incompletedb/incompletedb/internal/count"
	"github.com/incompletedb/incompletedb/internal/cq"
	"github.com/incompletedb/incompletedb/internal/graphs"
)

func testGraphs(t *testing.T, maxN int, seeds int) []*graphs.Graph {
	t.Helper()
	out := []*graphs.Graph{
		graphs.NewGraph(1),
		graphs.Path(3),
		graphs.Cycle(4),
		graphs.Complete(4),
	}
	for s := 0; s < seeds; s++ {
		r := rand.New(rand.NewSource(int64(s)))
		out = append(out, graphs.Random(2+r.Intn(maxN-1), 0.5, r))
	}
	return out
}

// E-P3.4: #3COL via #Valu(R(x,x)).
func TestReduction3Coloring(t *testing.T) {
	for i, g := range testGraphs(t, 5, 6) {
		red := ThreeColoringToVal(g)
		val, err := count.BruteForceValuations(red.DB, red.Query, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := red.Recover(val)
		want, err := graphs.CountProperColorings(g, 3)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("graph %d (%v): recovered %v, direct count %v", i, g, got, want)
		}
		// The exact FP algorithm does not apply (hard pattern R(x,x)) —
		// verify the classifier agrees with Table 1 by checking the
		// dispatcher falls back to brute force on naïve uniform tables.
		if red.DB.IsCodd() && g.M() > 0 {
			t.Fatal("3-coloring reduction should produce a naïve (non-Codd) table")
		}
	}
}

// E-P3.5: #Avoidance via #ValCd(R(x) ∧ S(x)).
func TestReductionAvoidance(t *testing.T) {
	bs := []*graphs.Bipartite{}
	for s := 0; s < 6; s++ {
		r := rand.New(rand.NewSource(int64(s)))
		bs = append(bs, graphs.RandomBipartite(1+r.Intn(3), 1+r.Intn(3), 0.7, r))
	}
	// Also the subdivision of a 3-regular multigraph (the hard instances).
	mg, err := graphs.RandomThreeRegularMultigraph(4, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	sub := mg.Subdivide()
	// Subdivide returns a Graph whose left part is the original nodes; cast
	// to Bipartite by construction: edges go node -> edge-node.
	bip := graphs.NewBipartite(mg.N, len(mg.Edges))
	for _, e := range sub.Edges() {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		bip.MustAddEdge(u, v-mg.N)
	}
	bs = append(bs, bip)

	for i, b := range bs {
		red := AvoidanceToValCodd(b)
		if !red.DB.IsCodd() {
			t.Fatal("avoidance reduction must produce a Codd table")
		}
		val, err := count.BruteForceValuations(red.DB, red.Query, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := red.Recover(val)
		want, err := graphs.CountAvoidingAssignmentsGraph(b.AsGraph())
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("bipartite %d: recovered %v, direct %v", i, got, want)
		}
		// Cross-check with the exact Codd algorithm of Theorem 3.7 — the
		// query R(x) ∧ S(x) is hard for #ValCd, so the FP algorithm must
		// refuse it.
		if _, err := count.ValuationsCodd(red.DB, red.Query.(*cq.BCQ)); err == nil {
			t.Fatal("Theorem 3.7 algorithm accepted a hard pattern")
		}
	}
}

// E-P3.8: #IS via the two uniform #Val patterns.
func TestReductionIndependentSets(t *testing.T) {
	for i, g := range testGraphs(t, 4, 5) {
		want, err := graphs.CountIndependentSets(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, build := range []func(*graphs.Graph) *Reduction{IndependentSetsToValPath, IndependentSetsToValRxySxy} {
			red := build(g)
			val, err := count.BruteForceValuations(red.DB, red.Query, nil)
			if err != nil {
				t.Fatal(err)
			}
			got := red.Recover(val)
			if got.Cmp(want) != 0 {
				t.Fatalf("graph %d (%v) via %s: recovered %v, direct %v", i, g, red.Target, got, want)
			}
		}
	}
}

// E-P3.11: #BIS via the linear system of #ValuCd oracle calls.
func TestReductionBISLinearSystem(t *testing.T) {
	oracle := func(db *core.Database, q *cq.BCQ) (*big.Int, error) {
		return count.BruteForceValuations(db, q, nil)
	}
	for s := 0; s < 6; s++ {
		r := rand.New(rand.NewSource(int64(s)))
		b := graphs.RandomBipartite(1+r.Intn(3), 1+r.Intn(3), 0.5, r)
		got, err := BISViaLinearSystem(b, oracle)
		if err != nil {
			t.Fatal(err)
		}
		want, err := graphs.CountIndependentSetsBipartite(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("seed %d: recovered %v, direct %v", s, got, want)
		}
	}
	// Degenerate empty graph.
	empty := graphs.NewBipartite(0, 0)
	got, err := BISViaLinearSystem(empty, oracle)
	if err != nil || got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("empty graph: %v, %v", got, err)
	}
}

// E-P4.2: #VC via #CompCd(R(x)), parsimonious.
func TestReductionVertexCover(t *testing.T) {
	for i, g := range testGraphs(t, 4, 5) {
		red := VertexCoversToCompCodd(g)
		if !red.DB.IsCodd() {
			t.Fatal("vertex-cover reduction must produce a Codd table")
		}
		comp, err := count.BruteForceCompletions(red.DB, red.Query, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := red.Recover(comp)
		want, err := graphs.CountVertexCovers(g)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("graph %d (%v): recovered %v, direct %v", i, g, got, want)
		}
	}
}

// E-P4.5a: #IS via #Compu over a binary relation on naïve tables.
func TestReductionCompIS(t *testing.T) {
	for i, g := range testGraphs(t, 4, 4) {
		red := IndependentSetsToCompUniform(g)
		comp, err := count.BruteForceCompletions(red.DB, red.Query, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := red.Recover(comp)
		want, err := graphs.CountIndependentSets(g)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("graph %d (%v): recovered %v, direct %v", i, g, got, want)
		}
		// Every completion must satisfy both R(x,x) and R(x,y).
		compAll, err := count.BruteForceAllCompletions(red.DB, nil)
		if err != nil {
			t.Fatal(err)
		}
		if compAll.Cmp(comp) != 0 {
			t.Fatal("some completion does not satisfy the query")
		}
	}
}

// E-P4.5b: #PF via #CompuCd over a binary relation on Codd tables.
func TestReductionPseudoforest(t *testing.T) {
	for s := 0; s < 5; s++ {
		r := rand.New(rand.NewSource(int64(s)))
		b := graphs.RandomBipartite(1+r.Intn(2), 1+r.Intn(3), 0.7, r)
		red := PseudoforestsToCompUniformCodd(b)
		if !red.DB.IsCodd() {
			t.Fatal("pseudoforest reduction must produce a Codd table")
		}
		comp, err := count.BruteForceCompletions(red.DB, red.Query, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := red.Recover(comp)
		want, err := graphs.CountPseudoforestSubsets(b.AsGraph())
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("seed %d (%v): recovered %v, direct %v", s, b.AsGraph(), got, want)
		}
	}
}

// E-P5.6: the 7-vs-8-completions 3-colorability gadget.
func TestReductionColorabilityGadget(t *testing.T) {
	cases := []struct {
		g    *graphs.Graph
		want int64 // 1 iff 3-colorable
	}{
		{graphs.Cycle(5), 1},
		{graphs.Complete(3), 1},
		{graphs.Complete(4), 0},
		{graphs.Petersen(), 1},
		{graphs.NewGraph(2), 1},
	}
	for i, c := range cases {
		if c.g.N() > 6 {
			// The Petersen gadget has 3^16 valuations — too big for brute
			// force; check colorability directly instead.
			if graphs.IsKColorable(c.g, 3) != (c.want == 1) {
				t.Fatalf("case %d: colorability mismatch", i)
			}
			continue
		}
		red := ColorabilityGadget(c.g)
		comp, err := count.BruteForceCompletions(red.DB, red.Query, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := red.Recover(comp)
		if got.Cmp(big.NewInt(c.want)) != 0 {
			t.Fatalf("case %d: recovered %v (completions %v), want %d", i, got, comp, c.want)
		}
	}
}

// E-T6.3: #k3SAT via #Compu(¬q).
func TestReductionK3SAT(t *testing.T) {
	q := K3SATQuery()
	if !q.SelfJoinFree() || len(q.Atoms) != 9 {
		t.Fatalf("unexpected query %v", q)
	}
	for s := 0; s < 5; s++ {
		r := rand.New(rand.NewSource(int64(s)))
		f, err := cnf.Random3CNF(3+r.Intn(2), 1+r.Intn(3), r)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= f.NumVars; k++ {
			red, err := K3SATToCompNeg(f, k)
			if err != nil {
				t.Fatal(err)
			}
			comp, err := count.BruteForceCompletions(red.DB, red.Query, nil)
			if err != nil {
				t.Fatal(err)
			}
			got := red.Recover(comp)
			want, err := f.CountSatisfyingPrefixes(k)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("seed %d k=%d formula %v: recovered %v, direct %v", s, k, f, got, want)
			}
		}
	}
	if _, err := K3SATToCompNeg(cnf.New(3), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// E-P6.1: the GapP identity #Compu(¬q) = #Compu(TRUE) − #Compu(q), and the
// Lemma D.1 padding #Compu(σ)(D) = #Compu(q)(pad(D)).
func TestGapPIdentityAndPadding(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f, err := cnf.Random3CNF(3, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	red, err := K3SATToCompNeg(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	db := red.DB
	q := K3SATQuery()

	all, err := count.BruteForceAllCompletions(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	pos, err := count.BruteForceCompletions(db, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	neg, err := count.BruteForceCompletions(db, &cq.Negation{Inner: q}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sum := new(big.Int).Add(pos, neg)
	if sum.Cmp(all) != 0 {
		t.Fatalf("GapP identity violated: %v + %v != %v", pos, neg, all)
	}

	padded, err := PadForK3SATQuery(db)
	if err != nil {
		t.Fatal(err)
	}
	padPos, err := count.BruteForceCompletions(padded, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if padPos.Cmp(all) != 0 {
		t.Fatalf("Lemma D.1 padding: #Compu(q)(D') = %v, want #Compu(σ)(D) = %v", padPos, all)
	}
	padAll, err := count.BruteForceAllCompletions(padded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if padAll.Cmp(all) != 0 {
		t.Fatal("padding changed the completion count")
	}
	if _, err := PadForK3SATQuery(padded); err == nil {
		t.Fatal("double padding accepted")
	}
}

// E-T6.4: #HamSubgraphs via #Valu of the ∃SO query.
func TestReductionHamSubgraphs(t *testing.T) {
	cases := []*graphs.Graph{
		graphs.Complete(4),
		graphs.Cycle(5),
		graphs.Path(4),
	}
	for s := 0; s < 3; s++ {
		r := rand.New(rand.NewSource(int64(s)))
		cases = append(cases, graphs.Random(4+r.Intn(2), 0.6, r))
	}
	for i, g := range cases {
		for k := 1; k <= g.N() && k <= 5; k++ {
			red, err := HamSubgraphsToVal(g, k)
			if err != nil {
				t.Fatal(err)
			}
			val, err := count.BruteForceValuations(red.DB, red.Query, nil)
			if err != nil {
				t.Fatal(err)
			}
			got := red.Recover(val)
			want, err := graphs.CountHamiltonianInducedSubgraphs(g, k)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("graph %d (%v) k=%d: recovered %v, direct %v", i, g, k, got, want)
			}
		}
	}
	if _, err := HamSubgraphsToVal(graphs.NewGraph(2), 5); err == nil {
		t.Fatal("k > n accepted")
	}
}
