package sweep

import "fmt"

// Snapshot captures one distinct completion for exact dedup: its canonical
// encoding (for cross-shard merges and collision buckets) plus a small
// open-addressed index of its distinct facts keyed by fact hash, so a
// cursor can test set equality against it by probing the per-fact hashes
// it already maintains incrementally — no sorting or encoding on the
// duplicate-heavy hot path.
type Snapshot struct {
	// Canonical is the exact canonical encoding: the distinct facts as
	// (rel, args...) interned-ID sequences, sorted. Two completions of
	// the same engine are equal iff their Canonical encodings are equal.
	Canonical []uint32

	facts []snapFact
	table []int32 // linear-probe index into facts; -1 = empty
	mask  uint32
	gen   uint32
}

type snapFact struct {
	h     Hash128
	off   int32 // offset of (rel, args...) in Canonical
	n     int32 // sequence length, 1 + arity
	stamp uint32
}

// Snapshot captures the cursor's current completion.
func (c *Cursor) Snapshot() *Snapshot {
	s := &Snapshot{Canonical: c.AppendCanonical(nil)}
	s.index(c.eng)
	return s
}

// SnapshotOf rehydrates a Snapshot from a canonical encoding previously
// produced by a cursor of an equivalently compiled engine (the same
// database compiles to the same interned IDs deterministically). This is
// how checkpointed completion-dedup state comes back from disk. The
// encoding is validated structurally — a truncated or corrupted blob
// returns an error instead of a panicking snapshot.
func (e *Engine) SnapshotOf(canonical []uint32) (*Snapshot, error) {
	for off := 0; off < len(canonical); {
		rel := canonical[off]
		if int(rel) >= len(e.relArity) {
			return nil, fmt.Errorf("sweep: canonical encoding names unknown relation id %d", rel)
		}
		n := int(e.relArity[rel]) + 1
		if off+n > len(canonical) {
			return nil, fmt.Errorf("sweep: canonical encoding truncated at offset %d", off)
		}
		off += n
	}
	s := &Snapshot{Canonical: append([]uint32(nil), canonical...)}
	s.index(e)
	return s, nil
}

// index builds the open-addressed fact table over Canonical.
func (s *Snapshot) index(e *Engine) {
	for off := 0; off < len(s.Canonical); {
		rel := s.Canonical[off]
		n := int(e.relArity[rel]) + 1
		h := factHash(rel, s.Canonical[off+1:off+n])
		s.facts = append(s.facts, snapFact{h: h, off: int32(off), n: int32(n)})
		off += n
	}
	size := 8
	for size < 4*len(s.facts) {
		size *= 2
	}
	s.mask = uint32(size - 1)
	s.table = make([]int32, size)
	for i := range s.table {
		s.table[i] = -1
	}
	for j := range s.facts {
		i := uint32(s.facts[j].h.Lo) & s.mask
		for s.table[i] >= 0 {
			i = (i + 1) & s.mask
		}
		s.table[i] = int32(j)
	}
}

// EqualsSnapshot reports whether the cursor's current completion is
// exactly the snapshot's, comparing fact contents (not just hashes): every
// arena fact must occur in the snapshot and every snapshot fact must be
// matched, so even a 128-bit fact-hash collision cannot produce a false
// equality. Cost is O(facts) probes with no allocation.
func (c *Cursor) EqualsSnapshot(s *Snapshot) bool {
	e := c.eng
	s.gen++
	if s.gen == 0 { // stamp wrap-around: invalidate all stamps
		for i := range s.facts {
			s.facts[i].stamp = 0
		}
		s.gen = 1
	}
	matched := 0
	for fi := range e.factRel {
		if e.dead != nil && e.dead[fi] {
			continue
		}
		h := c.factHash[fi]
		args := e.factArgs(c.args, int32(fi))
		found := false
		for i := uint32(h.Lo) & s.mask; s.table[i] >= 0; i = (i + 1) & s.mask {
			f := &s.facts[s.table[i]]
			if f.h != h || int(f.n) != len(args)+1 || s.Canonical[f.off] != e.factRel[fi] {
				continue
			}
			seq := s.Canonical[f.off+1 : f.off+f.n]
			eq := true
			for k := range args {
				if seq[k] != args[k] {
					eq = false
					break
				}
			}
			if eq {
				if f.stamp != s.gen {
					f.stamp = s.gen
					matched++
				}
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return matched == len(s.facts)
}
