package sweep

import "fmt"

// Snapshot captures one distinct completion for exact dedup: its canonical
// encoding (for cross-shard merges and collision buckets) split into
// per-fact (hash, offset, length) records, so a cursor can test set
// equality against it by probing its own distinct-value multiset — one
// O(1) probe per snapshot fact, no sorting or encoding on the
// duplicate-heavy hot path.
type Snapshot struct {
	// Canonical is the exact canonical encoding: the distinct facts as
	// (rel, args...) interned-ID sequences, sorted. Two completions of
	// the same engine are equal iff their Canonical encodings are equal.
	Canonical []uint32

	facts []snapFact
}

type snapFact struct {
	h   Hash128
	off int32 // offset of (rel, args...) in Canonical
	n   int32 // sequence length, 1 + arity
}

// Snapshot captures the cursor's current completion.
func (c *Cursor) Snapshot() *Snapshot {
	s := &Snapshot{Canonical: c.AppendCanonical(nil)}
	s.index(c.eng)
	return s
}

// SnapshotUsing is Snapshot with a reusable canonical scratch buffer:
// the encoding is built in buf (grown as needed), copied right-sized
// into the snapshot, and the grown buf is returned for the caller's next
// capture — per-shard dedup loops reuse one buffer across all their
// first-sight snapshots instead of growing a fresh one each time.
func (c *Cursor) SnapshotUsing(buf []uint32) (*Snapshot, []uint32) {
	buf = c.AppendCanonical(buf[:0])
	s := &Snapshot{Canonical: append(make([]uint32, 0, len(buf)), buf...)}
	s.index(c.eng)
	return s, buf
}

// SnapshotOf rehydrates a Snapshot from a canonical encoding previously
// produced by a cursor of an equivalently compiled engine (the same
// database compiles to the same interned IDs deterministically). This is
// how checkpointed completion-dedup state comes back from disk. The
// encoding is validated structurally — a truncated or corrupted blob
// returns an error instead of a panicking snapshot.
func (e *Engine) SnapshotOf(canonical []uint32) (*Snapshot, error) {
	for off := 0; off < len(canonical); {
		rel := canonical[off]
		if int(rel) >= len(e.relArity) {
			return nil, fmt.Errorf("sweep: canonical encoding names unknown relation id %d", rel)
		}
		n := int(e.relArity[rel]) + 1
		if off+n > len(canonical) {
			return nil, fmt.Errorf("sweep: canonical encoding truncated at offset %d", off)
		}
		off += n
	}
	s := &Snapshot{Canonical: append([]uint32(nil), canonical...)}
	s.index(e)
	return s, nil
}

// index splits Canonical into per-fact records with their hashes.
func (s *Snapshot) index(e *Engine) {
	for off := 0; off < len(s.Canonical); {
		rel := s.Canonical[off]
		n := int(e.relArity[rel]) + 1
		h := factHash(rel, s.Canonical[off+1:off+n])
		s.facts = append(s.facts, snapFact{h: h, off: int32(off), n: int32(n)})
		off += n
	}
}

// EqualsSnapshot reports whether the cursor's current completion is
// exactly the snapshot's. The cursor's multiset already holds the
// completion's distinct fact values, so equality is one cardinality
// compare plus one multiset probe per snapshot fact — and since the
// multiset verifies values (not just hashes), even a 128-bit fact-hash
// collision cannot produce a false equality. Only valid on
// ModeCompletions cursors, the only ones that deduplicate.
func (c *Cursor) EqualsSnapshot(s *Snapshot) bool {
	if c.mult == nil {
		panic("sweep: EqualsSnapshot on a cursor without completion state")
	}
	if c.mult.live != len(s.facts) {
		return false
	}
	for j := range s.facts {
		f := &s.facts[j]
		if !c.mult.contains(f.h, s.Canonical[f.off], s.Canonical[f.off+1:f.off+f.n]) {
			return false
		}
	}
	return true
}
