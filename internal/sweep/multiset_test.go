package sweep

import (
	"fmt"
	"math/rand"
	"testing"
)

// Parity tests for hashMultiset against a reference map multiset. The
// hashes fed in are deliberately adversarial — shared low words force
// long probe chains through the 64-bit prefilter, and fully colliding
// 128-bit hashes over distinct values force the exact-value comparison
// to disambiguate — because the SetGen exactness guarantee rests on the
// multiset reporting presence transitions for values, not hashes.

// msetValue is one (hash, rel, args) triple the test drives through the
// multiset; key identifies the exact value, ignoring the hash.
type msetValue struct {
	h    Hash128
	rel  uint32
	args []uint32
}

func (v msetValue) key() string { return fmt.Sprint(v.rel, v.args) }

// msetPool builds a pool of values: distinct values with distinct
// hashes, clusters sharing only the low hash word, and clusters sharing
// the full 128-bit hash.
func msetPool(r *rand.Rand, n int) []msetValue {
	pool := make([]msetValue, 0, n)
	for i := 0; i < n; i++ {
		var h Hash128
		switch i % 3 {
		case 0: // unique hash
			h = Hash128{Lo: r.Uint64(), Hi: r.Uint64()}
		case 1: // shared low word: prefilter hit, high-word mismatch
			h = Hash128{Lo: 0xDEADBEEF, Hi: r.Uint64()}
		case 2: // full 128-bit collision across distinct values
			h = Hash128{Lo: 0xCAFE, Hi: 0xF00D}
		}
		args := make([]uint32, 1+r.Intn(3))
		for j := range args {
			args[j] = uint32(r.Intn(4))
		}
		pool = append(pool, msetValue{h: h, rel: uint32(i % 5), args: args})
	}
	// Deduplicate by exact value so the reference counts line up even
	// when the random args collide within a hash cluster.
	seen := make(map[string]bool)
	out := pool[:0]
	for _, v := range pool {
		if !seen[v.key()] {
			seen[v.key()] = true
			out = append(out, v)
		}
	}
	return out
}

func checkLive(t *testing.T, op int, m *hashMultiset, ref map[string]int) {
	t.Helper()
	distinct := 0
	for _, c := range ref {
		if c > 0 {
			distinct++
		}
	}
	if m.live != distinct {
		t.Fatalf("op %d: live = %d, reference has %d distinct present values", op, m.live, distinct)
	}
}

// TestMultisetMatchesReference drives random incr/decr/decrPatched/
// contains/reset sequences through the multiset and a map, checking
// every reported 0→1 and 1→0 transition, every containment probe, and
// the live distinct count — across growth (the pool is larger than the
// initial table) and slot reuse after decrement to zero.
func TestMultisetMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		pool := msetPool(r, 80)
		m := newHashMultiset(2) // tiny: forces repeated growth
		ref := make(map[string]int)
		for op := 0; op < 3000; op++ {
			v := pool[r.Intn(len(pool))]
			switch r.Intn(10) {
			case 0, 1, 2, 3: // incr
				became := m.incr(v.h, v.rel, v.args)
				ref[v.key()]++
				if became != (ref[v.key()] == 1) {
					t.Fatalf("seed %d op %d: incr %v reported 0→1 = %v, reference count %d",
						seed, op, v.key(), became, ref[v.key()])
				}
			case 4, 5, 6: // decr, when present
				if ref[v.key()] == 0 {
					continue
				}
				gone := m.decr(v.h, v.rel, v.args)
				ref[v.key()]--
				if gone != (ref[v.key()] == 0) {
					t.Fatalf("seed %d op %d: decr %v reported 1→0 = %v, reference count %d",
						seed, op, v.key(), gone, ref[v.key()])
				}
			case 7: // decrPatched: remove v, presenting args with one slot patched
				if ref[v.key()] == 0 {
					continue
				}
				p := int32(r.Intn(len(v.args)))
				patched := append([]uint32(nil), v.args...)
				old := patched[p]
				patched[p] = uint32(r.Intn(4)) // post-patch arg, ignored by the probe
				gone := m.decrPatched(v.h, v.rel, patched, p, old)
				ref[v.key()]--
				if gone != (ref[v.key()] == 0) {
					t.Fatalf("seed %d op %d: decrPatched %v reported 1→0 = %v, reference count %d",
						seed, op, v.key(), gone, ref[v.key()])
				}
			case 8: // contains
				if got, want := m.contains(v.h, v.rel, v.args), ref[v.key()] > 0; got != want {
					t.Fatalf("seed %d op %d: contains %v = %v, want %v", seed, op, v.key(), got, want)
				}
			case 9: // occasional reset
				if r.Intn(20) == 0 {
					m.reset()
					for k := range ref {
						delete(ref, k)
					}
				}
			}
			checkLive(t, op, m, ref)
		}
		// Drain everything: every value must report its final 1→0.
		for _, v := range pool {
			for ref[v.key()] > 0 {
				ref[v.key()]--
				if gone := m.decr(v.h, v.rel, v.args); gone != (ref[v.key()] == 0) {
					t.Fatalf("seed %d drain: decr %v transition mismatch", seed, v.key())
				}
			}
			if m.contains(v.h, v.rel, v.args) {
				t.Fatalf("seed %d drain: %v still present", seed, v.key())
			}
		}
		if m.live != 0 {
			t.Fatalf("seed %d drain: live = %d, want 0", seed, m.live)
		}
	}
}

// TestMultisetDecrAbsentPanics: decrementing a value that was never
// inserted must panic — silent miscounts would corrupt the completion
// sum.
func TestMultisetDecrAbsentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("decr of an absent value did not panic")
		}
	}()
	m := newHashMultiset(4)
	m.decr(Hash128{Lo: 1, Hi: 2}, 0, []uint32{3})
}
