package sweep

import (
	"github.com/incompletedb/incompletedb/internal/cq"
)

// program is a query compiled against an engine's interned schema. The
// syntactic fragment — TRUE, BCQ, UCQ, BCQ+inequalities, and negations of
// those — evaluates directly over the arena; anything else (cq.Func and
// unknown Query implementations) stays opaque and is evaluated on a
// materialized core.Instance.
type program struct {
	opaque     cq.Query // non-nil → outside the compiled fragment
	negate     bool
	alwaysTrue bool // TRUE (modulo negate); disjuncts is then empty
	disjuncts  []compiledBCQ
}

// compiledBCQ is one disjunct: atoms over interned relation IDs with
// variables renumbered to dense slots, plus inequality pairs.
type compiledBCQ struct {
	// ok is false when the disjunct is statically unsatisfiable against
	// the database schema: an atom over a relation the database does not
	// have, or with the wrong arity, can never match any tuple.
	ok    bool
	atoms []compiledAtom
	nvars int
	diffs [][2]int32
}

type compiledAtom struct {
	rel  uint32
	vars []int32 // variable slot per argument position
}

// compileQuery lowers q onto e's interned schema.
func compileQuery(e *Engine, q cq.Query) program {
	switch t := q.(type) {
	case cq.Tautology:
		return program{alwaysTrue: true}
	case *cq.BCQ:
		return program{disjuncts: []compiledBCQ{compileBCQ(e, t, nil)}}
	case *cq.UCQ:
		p := program{disjuncts: make([]compiledBCQ, 0, len(t.Disjuncts))}
		for _, d := range t.Disjuncts {
			p.disjuncts = append(p.disjuncts, compileBCQ(e, d, nil))
		}
		return p
	case *cq.BCQNeq:
		return program{disjuncts: []compiledBCQ{compileBCQ(e, t.Base, t.Diffs)}}
	case *cq.Negation:
		inner := compileQuery(e, t.Inner)
		if inner.opaque != nil {
			return program{opaque: q}
		}
		inner.negate = !inner.negate
		return inner
	default:
		return program{opaque: q}
	}
}

func compileBCQ(e *Engine, b *cq.BCQ, diffs [][2]string) compiledBCQ {
	c := compiledBCQ{ok: true}
	varID := make(map[string]int32)
	slotOf := func(v string) int32 {
		id, ok := varID[v]
		if !ok {
			id = int32(len(varID))
			varID[v] = id
		}
		return id
	}
	for _, a := range b.Atoms {
		rid, exists := e.rels.Lookup(a.Rel)
		if !exists || int(e.relArity[rid]) != len(a.Vars) {
			// No tuple of the database can ever match this atom, so the
			// whole conjunction is false on every completion. A missing
			// relation gets a sentinel ID; the disjunct is never
			// evaluated, so the ID is only seen by the relevance scan.
			c.ok = false
			if !exists {
				rid = ^uint32(0)
			}
		}
		ca := compiledAtom{rel: rid, vars: make([]int32, len(a.Vars))}
		for p, v := range a.Vars {
			ca.vars[p] = slotOf(v)
		}
		c.atoms = append(c.atoms, ca)
	}
	for _, d := range diffs {
		x, okX := varID[d[0]]
		y, okY := varID[d[1]]
		// A diff variable that occurs in no atom is never bound, so the
		// inequality can never fail — drop it, matching cq.BCQNeq.Eval.
		if okX && okY {
			c.diffs = append(c.diffs, [2]int32{x, y})
		}
	}
	c.nvars = len(varID)
	return c
}

// evalProgram computes the current verdict over the cursor's arena.
func (c *Cursor) evalProgram() bool {
	p := &c.eng.prog
	if p.opaque != nil {
		return p.opaque.Eval(c.Instance())
	}
	res := p.alwaysTrue
	if !res {
		for i := range p.disjuncts {
			if c.evalDisjunct(i) {
				res = true
				break
			}
		}
	}
	if p.negate {
		return !res
	}
	return res
}

// evalDisjunct is the homomorphism check of one compiled BCQ: backtracking
// over atoms with array-indexed variable assignment and an explicit
// binding trail — allocation-free.
func (c *Cursor) evalDisjunct(di int) bool {
	b := &c.eng.prog.disjuncts[di]
	if !b.ok {
		return false
	}
	asg, bound := c.asg[di], c.bound[di]
	c.tp = 0
	var res bool
	if c.bits != nil {
		res = c.evalAtomsBits(b, c.bits.atoms[di], asg, bound, 0)
	} else {
		res = c.evalAtoms(b, asg, bound, 0)
	}
	// A successful match returns early with its bindings still on the
	// trail; unwind them so the next evaluation starts clean.
	for c.tp > 0 {
		c.tp--
		bound[c.trail[c.tp]] = false
	}
	return res
}

func (c *Cursor) evalAtoms(b *compiledBCQ, asg []uint32, bound []bool, i int) bool {
	if i == len(b.atoms) {
		return diffsOK(b, asg, bound)
	}
	a := &b.atoms[i]
	e := c.eng
	for _, fi := range e.relFacts[a.rel] {
		args := e.factArgs(c.args, fi)
		tp0 := c.tp
		ok := true
		for p, v := range a.vars {
			if bound[v] {
				if asg[v] != args[p] {
					ok = false
					break
				}
			} else {
				bound[v] = true
				asg[v] = args[p]
				c.trail[c.tp] = v
				c.tp++
			}
		}
		if ok && diffsOK(b, asg, bound) && c.evalAtoms(b, asg, bound, i+1) {
			return true
		}
		for c.tp > tp0 {
			c.tp--
			bound[c.trail[c.tp]] = false
		}
	}
	return false
}

// diffsOK checks every inequality whose two variables are both bound.
func diffsOK(b *compiledBCQ, asg []uint32, bound []bool) bool {
	for _, d := range b.diffs {
		if bound[d[0]] && bound[d[1]] && asg[d[0]] == asg[d[1]] {
			return false
		}
	}
	return true
}
