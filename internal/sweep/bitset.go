package sweep

import "math/bits"

// Bitset-compiled membership: the engine lowers single-relation atom
// matching onto intersections of per-(relation, position, value) bitmaps
// over per-relation fact ordinals, so the candidate scan of evalAtoms
// becomes ANDs over []uint64 words instead of per-tuple backtracking
// probes.
//
// With a fixed atom order the set of variables bound on entry to atom i
// is statically known (the variables of atoms 0..i-1), so each argument
// position of each atom is classified at compile time:
//
//   - a position holding an already-bound variable becomes a check: AND
//     the (relation, position, value=asg[v]) bitmap;
//   - the second and later positions of a variable first introduced by
//     this atom become equalities: AND the per-(relation, p1, p2) bitmap
//     of facts whose two arguments currently agree;
//   - the first position of each new variable is a bind: read the
//     argument off each surviving candidate.
//
// The bitmaps describe the cursor's current completion, so they are
// cursor-local state, maintained incrementally by applyDigit: patching
// one null slot moves at most one bit per affected bitmap. The
// engine-side plan (block offsets, per-atom access plans, per-slot
// update descriptors) is recomputed after every successful Patch — Patch
// invalidates all cursors anyway, and relFacts hold exactly the live
// facts, so ordinals stay dense across tombstones and appends.

// bitsetWordBudget caps the bitmap words one cursor allocates (position
// plus equality blocks, 8 MiB of uint64s). Beyond it the plan is dropped
// and evaluation stays scalar.
const bitsetWordBudget = 1 << 20

// posBlock is the bitmap family of one (relation, position): for every
// interned value v, the set of facts whose argument at pos currently
// equals v. Value v's words live at posBits[off+int(v)*words:].
type posBlock struct {
	rel   uint32
	pos   int32
	off   int
	words int
}

// eqBlock is the bitmap of one intra-atom equality (relation, p1, p2):
// the set of facts whose arguments at p1 and p2 currently agree.
type eqBlock struct {
	rel    uint32
	p1, p2 int32
	off    int
	words  int
}

// posCheck ANDs the bitmap of (block at off, value asg[vr]).
type posCheck struct {
	off int
	vr  int32
}

// bindPos reads variable vr off a candidate's argument position pos.
type bindPos struct {
	pos int32
	vr  int32
}

// atomBits is the compiled bitmap access plan of one atom.
type atomBits struct {
	// use reports that the atom has at least one check or equality mask.
	// Without one the intersection would be all-ones over the relation's
	// facts and the plain scan is cheaper; all positions are then binds.
	use bool
	// existOnly reports that nothing downstream consumes the atom's
	// bindings — it is the disjunct's last atom and the disjunct has no
	// inequalities — so any surviving candidate proves the match and the
	// bind/recurse tail is skipped.
	existOnly bool
	words     int
	checks    []posCheck
	eqOffs    []int
	binds     []bindPos
}

// eqUpd is one equality bitmap a slot feeds: after a patch the slot's
// fact is re-tested against its other argument.
type eqUpd struct {
	off      int
	otherArg int32
}

// slotUpd is the per-slot bitmap maintenance descriptor: where the
// slot's fact's bit lives and which bitmaps its argument position feeds.
type slotUpd struct {
	arg      int32  // arena index of the patched argument
	word     int32  // ord >> 6 within each of the fact's bitmaps
	bit      uint64 // 1 << (ord & 63)
	posOff   int    // posBlock base, -1 when the position feeds none
	posWords int
	eqs      []eqUpd
}

// bitsetPlan is the engine-side compilation product. The []uint64 arrays
// it indexes are owned by each cursor.
type bitsetPlan struct {
	posWords  int
	eqWords   int
	posBlocks []posBlock
	eqBlocks  []eqBlock
	atoms     [][]atomBits // per (disjunct, atom)
	upd       [][]slotUpd  // per digit, aligned with digit.slots

	// flat is the fully-flattened verdict of a single-disjunct,
	// single-atom program whose match is pure bitmap intersection (only
	// equality masks, nothing downstream of the atom): the verdict is
	// "some word of the AND over these eq offsets is non-zero", xor
	// flatNeg. Nil when the program doesn't have that shape.
	flat      []int
	flatWords int
	flatNeg   bool
}

type posKey struct {
	rel uint32
	pos int32
}

type eqKey struct {
	rel    uint32
	p1, p2 int32
}

// buildBitsets compiles (or rebuilds) the engine's bitset plan, clearing
// it when disabled, when no atom carries a mask, or when the word budget
// is exceeded. Called at the end of Compile and after every successful
// Patch.
func (e *Engine) buildBitsets() {
	e.bits = nil
	if e.bitsetOff || e.mode == ModeSample || e.prog.opaque != nil || len(e.prog.disjuncts) == 0 {
		return
	}
	bp := &bitsetPlan{atoms: make([][]atomBits, len(e.prog.disjuncts))}
	posIdx := make(map[posKey]int)
	eqIdx := make(map[eqKey]int)
	use := false
	for di := range e.prog.disjuncts {
		d := &e.prog.disjuncts[di]
		ab := make([]atomBits, len(d.atoms))
		bp.atoms[di] = ab
		if !d.ok {
			continue
		}
		bound := make([]bool, d.nvars)
		first := make([]int32, d.nvars)
		for ai := range d.atoms {
			a := &d.atoms[ai]
			ca := &ab[ai]
			ca.words = (len(e.relFacts[a.rel]) + 63) / 64
			for i := range first {
				first[i] = -1
			}
			for p, vr := range a.vars {
				switch {
				case bound[vr]:
					k := posKey{a.rel, int32(p)}
					bi, ok := posIdx[k]
					if !ok {
						bi = len(bp.posBlocks)
						posIdx[k] = bi
						bp.posBlocks = append(bp.posBlocks, posBlock{rel: a.rel, pos: int32(p), words: ca.words})
					}
					// off holds the block index until the layout pass.
					ca.checks = append(ca.checks, posCheck{off: bi, vr: vr})
				case first[vr] >= 0:
					k := eqKey{a.rel, first[vr], int32(p)}
					bi, ok := eqIdx[k]
					if !ok {
						bi = len(bp.eqBlocks)
						eqIdx[k] = bi
						bp.eqBlocks = append(bp.eqBlocks, eqBlock{rel: a.rel, p1: first[vr], p2: int32(p), words: ca.words})
					}
					ca.eqOffs = append(ca.eqOffs, bi)
				default:
					first[vr] = int32(p)
					ca.binds = append(ca.binds, bindPos{pos: int32(p), vr: vr})
				}
			}
			ca.use = len(ca.checks)+len(ca.eqOffs) > 0
			ca.existOnly = ai == len(d.atoms)-1 && len(d.diffs) == 0
			if ca.use {
				use = true
			}
			for _, vr := range a.vars {
				bound[vr] = true
			}
		}
	}
	if !use {
		return
	}
	// Lay the blocks out under the word budget.
	nvals := e.values.Len()
	off := 0
	for i := range bp.posBlocks {
		bp.posBlocks[i].off = off
		off += nvals * bp.posBlocks[i].words
		if off > bitsetWordBudget {
			return
		}
	}
	bp.posWords = off
	off = 0
	for i := range bp.eqBlocks {
		bp.eqBlocks[i].off = off
		off += bp.eqBlocks[i].words
	}
	bp.eqWords = off
	if bp.posWords+bp.eqWords > bitsetWordBudget {
		return
	}
	// Resolve block indices to word offsets in the per-atom plans.
	for _, ab := range bp.atoms {
		for i := range ab {
			for j := range ab[i].checks {
				ab[i].checks[j].off = bp.posBlocks[ab[i].checks[j].off].off
			}
			for j := range ab[i].eqOffs {
				ab[i].eqOffs[j] = bp.eqBlocks[ab[i].eqOffs[j]].off
			}
		}
	}
	// Fact ordinals are positions in relFacts — live facts only.
	ord := make([]int32, len(e.factRel))
	for i := range ord {
		ord[i] = -1
	}
	for _, rf := range e.relFacts {
		for j, fi := range rf {
			ord[fi] = int32(j)
		}
	}
	bp.upd = make([][]slotUpd, len(e.digits))
	for k := range e.digits {
		slots := e.digits[k].slots
		if len(slots) == 0 {
			continue
		}
		us := make([]slotUpd, len(slots))
		for j, s := range slots {
			o := ord[s.fact]
			u := slotUpd{
				arg:    e.factOff[s.fact] + s.pos,
				word:   o >> 6,
				bit:    1 << uint(o&63),
				posOff: -1,
			}
			rid := e.factRel[s.fact]
			if bi, ok := posIdx[posKey{rid, s.pos}]; ok {
				u.posOff = bp.posBlocks[bi].off
				u.posWords = bp.posBlocks[bi].words
			}
			for bi := range bp.eqBlocks {
				eb := &bp.eqBlocks[bi]
				if eb.rel != rid {
					continue
				}
				other := int32(-1)
				if eb.p1 == s.pos {
					other = eb.p2
				} else if eb.p2 == s.pos {
					other = eb.p1
				}
				if other >= 0 {
					u.eqs = append(u.eqs, eqUpd{off: eb.off, otherArg: e.factOff[s.fact] + other})
				}
			}
			us[j] = u
		}
		bp.upd[k] = us
	}
	if len(e.prog.disjuncts) == 1 {
		if d0 := bp.atoms[0]; len(d0) == 1 && d0[0].use && d0[0].existOnly && len(d0[0].checks) == 0 {
			bp.flat = d0[0].eqOffs
			bp.flatWords = d0[0].words
			bp.flatNeg = e.prog.negate
		}
	}
	e.bits = bp
}

// evalFlat is the flattened verdict (see bitsetPlan.flat): an unrolled
// AND-chain over the equality bitmaps, materialized into the cursor's
// scratch words only when the chain is longer than two.
func (c *Cursor) evalFlat() bool {
	bp := c.bits
	w := bp.flatWords
	if w == 1 {
		// Single-word bitmaps: the scalar chain beats a helper call.
		m := c.eqBits[bp.flat[0]]
		for _, off := range bp.flat[1:] {
			m &= c.eqBits[off]
		}
		if m != 0 {
			return !bp.flatNeg
		}
		return bp.flatNeg
	}
	first := c.eqBits[bp.flat[0] : bp.flat[0]+w]
	hit := false
	switch len(bp.flat) {
	case 1:
		hit = anyNonzero(first)
	case 2:
		hit = andAnyNonzero(first, c.eqBits[bp.flat[1]:bp.flat[1]+w])
	default:
		s := c.scratchWords(0, w)
		copyAnd(s, first, c.eqBits[bp.flat[1]:bp.flat[1]+w])
		for _, off := range bp.flat[2:] {
			andInto(s, c.eqBits[off:off+w])
		}
		hit = anyNonzero(s)
	}
	if hit {
		return !bp.flatNeg
	}
	return bp.flatNeg
}

// scratchWords returns a cursor-local scratch buffer of n bitmap words
// for atom depth d. Depth-indexed buffers keep an outer atom's
// materialized intersection intact while deeper atoms of the recursion
// compute their own.
func (c *Cursor) scratchWords(d, n int) []uint64 {
	for len(c.wordScratch) <= d {
		c.wordScratch = append(c.wordScratch, nil)
	}
	if cap(c.wordScratch[d]) < n {
		c.wordScratch[d] = make([]uint64, n)
	}
	return c.wordScratch[d][:n]
}

// Bitset reports whether the engine compiled a bitset membership plan
// (cursor evaluation then runs word-parallel).
func (e *Engine) Bitset() bool { return e.bits != nil }

// DisableBitsets drops the bitset plan and prevents it from being
// rebuilt, pinning the scalar evaluation path — a comparison hook for
// tests and benchmarks. Like Patch, it must not run concurrently with
// cursor use and existing cursors must be discarded.
func (e *Engine) DisableBitsets() {
	e.bitsetOff = true
	e.bits = nil
}

// rebuildBits repopulates the cursor's bitmaps from its current arena.
func (c *Cursor) rebuildBits() {
	bp := c.bits
	clear(c.posBits)
	clear(c.eqBits)
	e := c.eng
	for bi := range bp.posBlocks {
		blk := &bp.posBlocks[bi]
		for o, fi := range e.relFacts[blk.rel] {
			v := c.args[e.factOff[fi]+blk.pos]
			c.posBits[blk.off+int(v)*blk.words+(o>>6)] |= 1 << uint(o&63)
		}
	}
	for bi := range bp.eqBlocks {
		blk := &bp.eqBlocks[bi]
		for o, fi := range e.relFacts[blk.rel] {
			off := e.factOff[fi]
			if c.args[off+blk.p1] == c.args[off+blk.p2] {
				c.eqBits[blk.off+(o>>6)] |= 1 << uint(o&63)
			}
		}
	}
}

// pendingBit is one deferred bitmap maintenance op of a completions
// cursor: slot u's fact's argument changed old → new, not yet applied
// to the bitmaps.
type pendingBit struct {
	u        *slotUpd
	old, new uint32
}

// maxPendingBits bounds the deferred-maintenance buffer; beyond it the
// cursor falls back to one full bitmap rebuild at the next match.
const maxPendingBits = 64

// deferSlotBits queues a bitmap maintenance op instead of applying it:
// in ModeCompletions the query is matched only once per distinct
// completion, so per-step maintenance is wasted on the duplicate-heavy
// steps in between. The queue is replayed by syncBits when a match
// actually needs the bitmaps; past maxPendingBits a full rebuild is
// cheaper than the replay.
func (c *Cursor) deferSlotBits(u *slotUpd, old, v uint32) {
	if c.bitsRebuild {
		return
	}
	if len(c.bitsPending) >= maxPendingBits {
		c.bitsRebuild = true
		c.bitsPending = c.bitsPending[:0]
		return
	}
	c.bitsPending = append(c.bitsPending, pendingBit{u: u, old: old, new: v})
}

// syncBits brings the bitmaps up to date with the arena before an
// evaluation reads them.
func (c *Cursor) syncBits() {
	if c.bits == nil || (len(c.bitsPending) == 0 && !c.bitsRebuild) {
		return
	}
	if c.bitsRebuild {
		c.rebuildBits()
		c.bitsRebuild = false
		return
	}
	for i := range c.bitsPending {
		p := &c.bitsPending[i]
		c.updateSlotBits(p.u, p.old, p.new)
	}
	c.bitsPending = c.bitsPending[:0]
}

// updateSlotBits moves the slot's fact's bit after its patched argument
// changed from old to v.
func (c *Cursor) updateSlotBits(u *slotUpd, old, v uint32) {
	w := int(u.word)
	if u.posOff >= 0 {
		c.posBits[u.posOff+int(old)*u.posWords+w] &^= u.bit
		c.posBits[u.posOff+int(v)*u.posWords+w] |= u.bit
	}
	for i := range u.eqs {
		eq := &u.eqs[i]
		if v == c.args[eq.otherArg] {
			c.eqBits[eq.off+w] |= u.bit
		} else {
			c.eqBits[eq.off+w] &^= u.bit
		}
	}
}

// evalAtomsBits is evalAtoms with the candidate scan of masked atoms
// replaced by the word-AND over the compiled bitmaps. Unmasked atoms
// (all positions bind fresh, distinct variables) scan the relation's
// live facts like the scalar path.
func (c *Cursor) evalAtomsBits(b *compiledBCQ, abs []atomBits, asg []uint32, bound []bool, i int) bool {
	if i == len(b.atoms) {
		return diffsOK(b, asg, bound)
	}
	e := c.eng
	ab := &abs[i]
	rf := e.relFacts[b.atoms[i].rel]
	if !ab.use {
		if ab.existOnly {
			return len(rf) > 0
		}
		for _, fi := range rf {
			if c.bindCandidate(b, abs, asg, bound, i, e.factArgs(c.args, fi)) {
				return true
			}
		}
		return false
	}
	if ab.words >= 4 {
		return c.evalAtomWide(b, abs, asg, bound, i, rf)
	}
	for w := 0; w < ab.words; w++ {
		m := ^uint64(0)
		for _, ck := range ab.checks {
			m &= c.posBits[ck.off+int(asg[ck.vr])*ab.words+w]
			if m == 0 {
				break
			}
		}
		if m == 0 {
			continue
		}
		for _, off := range ab.eqOffs {
			m &= c.eqBits[off+w]
			if m == 0 {
				break
			}
		}
		if ab.existOnly && m != 0 {
			return true
		}
		for m != 0 {
			fi := rf[w<<6|bits.TrailingZeros64(m)]
			m &= m - 1
			if c.bindCandidate(b, abs, asg, bound, i, e.factArgs(c.args, fi)) {
				return true
			}
		}
	}
	return false
}

// evalAtomWide is the wide-relation arm of evalAtomsBits: at four or
// more bitmap words the unrolled AND-chain over whole blocks (see
// words.go) beats the word-major loop with its per-word early exits. The
// intersection lands in the cursor's scratch words, existence-only atoms
// short-circuit through andAnyNonzero without materializing it.
func (c *Cursor) evalAtomWide(b *compiledBCQ, abs []atomBits, asg []uint32, bound []bool, i int, rf []int32) bool {
	ab := &abs[i]
	w := ab.words
	// Gather the chain: position checks first, then equality masks.
	var first []uint64
	if len(ab.checks) > 0 {
		ck := ab.checks[0]
		first = c.posBits[ck.off+int(asg[ck.vr])*w:][:w]
	} else {
		first = c.eqBits[ab.eqOffs[0] : ab.eqOffs[0]+w]
	}
	rest := len(ab.checks) + len(ab.eqOffs) - 1
	if rest == 0 {
		if ab.existOnly {
			return anyNonzero(first)
		}
		return c.scanCandidates(b, abs, asg, bound, i, rf, first)
	}
	if rest == 1 && ab.existOnly {
		var second []uint64
		if len(ab.checks) > 1 {
			ck := ab.checks[1]
			second = c.posBits[ck.off+int(asg[ck.vr])*w:][:w]
		} else {
			second = c.eqBits[ab.eqOffs[len(ab.eqOffs)-1] : ab.eqOffs[len(ab.eqOffs)-1]+w]
		}
		return andAnyNonzero(first, second)
	}
	s := c.scratchWords(i, w)
	copy(s, first)
	for _, ck := range ab.checks[min(1, len(ab.checks)):] {
		andInto(s, c.posBits[ck.off+int(asg[ck.vr])*w:][:w])
	}
	eqs := ab.eqOffs
	if len(ab.checks) == 0 {
		eqs = eqs[1:]
	}
	for _, off := range eqs {
		andInto(s, c.eqBits[off:off+w])
	}
	if ab.existOnly {
		return anyNonzero(s)
	}
	return c.scanCandidates(b, abs, asg, bound, i, rf, s)
}

// scanCandidates binds and recurses over every set bit of mask.
func (c *Cursor) scanCandidates(b *compiledBCQ, abs []atomBits, asg []uint32, bound []bool, i int, rf []int32, mask []uint64) bool {
	e := c.eng
	for w, m := range mask {
		for m != 0 {
			fi := rf[w<<6|bits.TrailingZeros64(m)]
			m &= m - 1
			if c.bindCandidate(b, abs, asg, bound, i, e.factArgs(c.args, fi)) {
				return true
			}
		}
	}
	return false
}

// bindCandidate binds atom i's fresh variables off one candidate fact and
// recurses — checks and equalities were already enforced by the masks (or
// are absent). Bindings are unwound on failure.
func (c *Cursor) bindCandidate(b *compiledBCQ, abs []atomBits, asg []uint32, bound []bool, i int, args []uint32) bool {
	tp0 := c.tp
	for _, bd := range abs[i].binds {
		bound[bd.vr] = true
		asg[bd.vr] = args[bd.pos]
		c.trail[c.tp] = bd.vr
		c.tp++
	}
	if diffsOK(b, asg, bound) && c.evalAtomsBits(b, abs, asg, bound, i+1) {
		return true
	}
	for c.tp > tp0 {
		c.tp--
		bound[c.trail[c.tp]] = false
	}
	return false
}
