package sweep

import (
	"math/big"
	"testing"
)

// TestKernelForSize pins the width thresholds: the kernel is a proof that
// any count bounded by the space size fits the chosen representation, so
// the boundaries sit exactly at 2^64 and 2^128.
func TestKernelForSize(t *testing.T) {
	two64 := new(big.Int).Lsh(big.NewInt(1), 64)
	two128 := new(big.Int).Lsh(big.NewInt(1), 128)
	cases := []struct {
		size *big.Int
		want Kernel
	}{
		{big.NewInt(0), KernelUint64},
		{big.NewInt(1), KernelUint64},
		{new(big.Int).Sub(two64, big.NewInt(1)), KernelUint64},
		{two64, KernelUint128},
		{new(big.Int).Sub(two128, big.NewInt(1)), KernelUint128},
		{two128, KernelBigInt},
		{new(big.Int).Lsh(big.NewInt(1), 200), KernelBigInt},
	}
	for i, c := range cases {
		if got := KernelForSize(c.size); got != c.want {
			t.Errorf("case %d: KernelForSize(%v) = %q, want %q", i, c.size, got, c.want)
		}
	}
}

// TestKernelWider pins the promotion lattice used when a plan folds the
// kernels of several sweep nodes.
func TestKernelWider(t *testing.T) {
	var empty Kernel
	cases := []struct {
		a, b, want Kernel
	}{
		{empty, KernelUint64, KernelUint64},
		{KernelUint64, empty, KernelUint64},
		{KernelUint64, KernelUint128, KernelUint128},
		{KernelBigInt, KernelUint128, KernelBigInt},
		{KernelUint64, KernelUint64, KernelUint64},
	}
	for i, c := range cases {
		if got := c.a.Wider(c.b); got != c.want {
			t.Errorf("case %d: %q.Wider(%q) = %q, want %q", i, c.a, c.b, got, c.want)
		}
	}
}
