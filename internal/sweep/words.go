package sweep

import "math/bits"

// Word-level helpers shared by every bitset chain: AND/popcount loops
// over []uint64 bitmap words. The AND-chain forms are 4-word-unrolled —
// removing the per-word bounds check + loop-carried dependency keeps
// four independent ALU chains in flight, measured ~2× at 16–64 words.
// The popcount forms deliberately stay straight loops: OnesCount64
// already feeds the ALU enough independent work that unrolling only
// adds register pressure (measured ~15% slower unrolled).
// BenchmarkAndPopcountWords and BenchmarkWordHelpers pin both choices
// against their counterparts.

// andInto sets dst[i] &= src[i] for every word. len(src) must be at
// least len(dst).
func andInto(dst, src []uint64) {
	n := len(dst)
	src = src[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] &= src[i]
		dst[i+1] &= src[i+1]
		dst[i+2] &= src[i+2]
		dst[i+3] &= src[i+3]
	}
	for ; i < n; i++ {
		dst[i] &= src[i]
	}
}

// copyAnd sets dst[i] = a[i] & b[i] for every word. a and b must be at
// least len(dst) long.
func copyAnd(dst, a, b []uint64) {
	n := len(dst)
	a, b = a[:n], b[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] = a[i] & b[i]
		dst[i+1] = a[i+1] & b[i+1]
		dst[i+2] = a[i+2] & b[i+2]
		dst[i+3] = a[i+3] & b[i+3]
	}
	for ; i < n; i++ {
		dst[i] = a[i] & b[i]
	}
}

// anyNonzero reports whether some word is non-zero. The unrolled body
// ORs four words before testing, trading one early exit per word for a
// quarter of the branches.
func anyNonzero(ws []uint64) bool {
	n := len(ws)
	i := 0
	for ; i+4 <= n; i += 4 {
		if ws[i]|ws[i+1]|ws[i+2]|ws[i+3] != 0 {
			return true
		}
	}
	for ; i < n; i++ {
		if ws[i] != 0 {
			return true
		}
	}
	return false
}

// andAnyNonzero reports whether (a & b) has a set bit, without
// materializing the intersection.
func andAnyNonzero(a, b []uint64) bool {
	n := len(a)
	b = b[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		if a[i]&b[i]|a[i+1]&b[i+1]|a[i+2]&b[i+2]|a[i+3]&b[i+3] != 0 {
			return true
		}
	}
	for ; i < n; i++ {
		if a[i]&b[i] != 0 {
			return true
		}
	}
	return false
}

// popcountWords sums the set bits of ws.
func popcountWords(ws []uint64) int {
	c := 0
	for _, w := range ws {
		c += bits.OnesCount64(w)
	}
	return c
}

// andPopcountWords counts the set bits of (a & b) without materializing
// the intersection.
func andPopcountWords(a, b []uint64) int {
	b = b[:len(a)]
	c := 0
	for i, w := range a {
		c += bits.OnesCount64(w & b[i])
	}
	return c
}
