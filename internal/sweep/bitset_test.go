package sweep

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"github.com/incompletedb/incompletedb/internal/core"
	"github.com/incompletedb/incompletedb/internal/cq"
)

// Tests pinning the bitset-compiled membership kernel against the scalar
// evaluator: for any engine, a sweep with the compiled bitmaps must
// produce exactly the verdict sequence of the same engine with bitsets
// disabled — across query shapes (BCQ, UCQ, negation, inequality),
// database styles, and mutations applied through Patch.

// bitsetQueries spans the program shapes the bitset compiler classifies
// differently: bound-variable checks, repeated-variable equality masks
// (including the single-atom flat-verdict path), disjunction, negation,
// and inequalities (which suppress the exist-only shortcut).
var bitsetQueries = []cq.Query{
	cq.MustParseBCQ("R(x, x)"), // flat verdict: one atom, equality mask only
	cq.MustParseBCQ("R(x, y) ∧ S(y)"),
	cq.MustParseBCQ("R(x, y) ∧ T(y, x)"),
	cq.MustParse("S(x) | T(y, y)"),
	cq.MustParse("R(x, x) | R(x, y) ∧ S(x)"),
	&cq.Negation{Inner: cq.MustParseBCQ("R(x, x)")},
	cq.MustParse("R(x, y) ∧ x ≠ y"),
	cq.MustParse("R(x, y) ∧ S(z) ∧ x ≠ z"),
}

// compareBitsetScalar sweeps both engines in lockstep and requires
// identical verdicts at every index; bit is expected to carry the bitmap
// plan, sc to run the scalar evaluator.
func compareBitsetScalar(t *testing.T, seed int64, step int, bit, sc *Engine) {
	t.Helper()
	if bit.Size().Cmp(sc.Size()) != 0 {
		t.Fatalf("seed %d step %d: sizes diverge: %v vs %v", seed, step, bit.Size(), sc.Size())
	}
	size := bit.Size()
	if size.Sign() == 0 {
		return
	}
	bc, scc := bit.NewCursor(), sc.NewCursor()
	if err := bc.Seek(big.NewInt(0)); err != nil {
		t.Fatal(err)
	}
	if err := scc.Seek(big.NewInt(0)); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); ; i++ {
		if bc.Matches() != scc.Matches() {
			t.Fatalf("seed %d step %d index %d: bitset verdict %v, scalar %v",
				seed, step, i, bc.Matches(), scc.Matches())
		}
		// Spot-check Seek against incremental Step on the bitset engine:
		// seeking rebuilds the cursor bitmaps from scratch.
		if i%37 == 0 {
			chk := bit.NewCursor()
			if err := chk.Seek(big.NewInt(i)); err != nil {
				t.Fatal(err)
			}
			if chk.Matches() != bc.Matches() {
				t.Fatalf("seed %d step %d index %d: Seek verdict %v, Step verdict %v",
					seed, step, i, chk.Matches(), bc.Matches())
			}
		}
		bs, ss := bc.Step(), scc.Step()
		if bs != ss {
			t.Fatalf("seed %d step %d index %d: Step exhaustion diverges", seed, step, i)
		}
		if !bs {
			return
		}
	}
}

// TestBitsetMatchesScalar is the property test: random databases ×
// bitsetQueries, sweeping the default (bitset) engine against the same
// compile with DisableBitsets, then interleaving random mutations through
// Patch on both and re-comparing.
func TestBitsetMatchesScalar(t *testing.T) {
	bitsetSeen := 0
	for seed := int64(0); seed < 100; seed++ {
		r := rand.New(rand.NewSource(seed))
		db := randDB(r, int(seed%3))
		q := bitsetQueries[r.Intn(len(bitsetQueries))]
		bit, err := Compile(db, q, ModeValuations)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := Compile(db, q, ModeValuations)
		if err != nil {
			t.Fatal(err)
		}
		sc.DisableBitsets()
		if sc.Bitset() {
			t.Fatal("DisableBitsets left the plan in place")
		}
		if bit.Bitset() {
			bitsetSeen++
		}
		compareBitsetScalar(t, seed, -1, bit, sc)

		ver := db.Version()
		mr := rand.New(rand.NewSource(seed * 101))
		for step := 0; step < 4; step++ {
			for n := 1 + mr.Intn(3); n > 0; n-- {
				mutateRandom(mr, db)
			}
			deltas, ok := db.DeltasSince(ver)
			if !ok {
				t.Fatal("delta log unavailable")
			}
			ver = db.Version()
			for _, d := range deltas {
				// Patch both engines with the same delta; on either
				// failing, recompile both so they stay comparable.
				pb, ps := bit.Patch(db, d), sc.Patch(db, d)
				if pb && ps {
					continue
				}
				if bit, err = Compile(db, q, ModeValuations); err != nil {
					t.Fatalf("seed %d step %d: recompile: %v", seed, step, err)
				}
				if sc, err = Compile(db, q, ModeValuations); err != nil {
					t.Fatalf("seed %d step %d: recompile: %v", seed, step, err)
				}
				sc.DisableBitsets()
				break
			}
			if !bit.Size().IsInt64() || bit.Size().Int64() > 1<<14 {
				break // keep full enumeration cheap
			}
			compareBitsetScalar(t, seed, step, bit, sc)
		}
	}
	if bitsetSeen == 0 {
		t.Fatal("no seed compiled a bitset plan; the property test pinned nothing")
	}
}

// TestBitsetSampleModeOff pins that ModeSample engines never carry a
// bitmap plan (sampling mutates digit domains per draw, which the plan's
// value-indexed blocks do not track).
func TestBitsetSampleModeOff(t *testing.T) {
	db := core.NewUniformDatabase([]string{"a", "b"})
	db.MustAddFact("R", core.Null(1), core.Null(2))
	eng, err := Compile(db, cq.MustParseBCQ("R(x, x)"), ModeSample)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Bitset() {
		t.Fatal("ModeSample engine compiled a bitset plan")
	}
}

// variantOpts spans the four escape-hatch combinations of CompileWith.
// The last entry — scalar evaluation in the query's own atom order — is
// the reference shape every optimized variant must agree with.
var variantOpts = []CompileOptions{
	{},                     // default: bitset membership, cost-ordered atoms
	{DisableBitsets: true}, // scalar kernel, cost-ordered atoms
	{SyntacticOrder: true}, // bitset membership, syntactic atom order
	{DisableBitsets: true, SyntacticOrder: true}, // the reference
}

func compileVariants(t *testing.T, db *core.Database, q cq.Query, mode Mode) []*Engine {
	t.Helper()
	engs := make([]*Engine, len(variantOpts))
	for i, o := range variantOpts {
		e, err := CompileWith(db, q, mode, o)
		if err != nil {
			t.Fatal(err)
		}
		engs[i] = e
	}
	return engs
}

// dedupTrace sweeps a completions-mode engine the way the count layer's
// dedup shard does — skipping visits whose SetGen is unchanged — and
// returns the first-seen deduplicated (canonical encoding, verdict)
// sequence. A sound SetGen skip never hides a distinct completion, so
// every engine variant must produce the identical trace.
func dedupTrace(t *testing.T, e *Engine) []string {
	t.Helper()
	cur := e.NewCursor()
	if err := cur.Seek(big.NewInt(0)); err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	var out []string
	var lastGen uint64
	for {
		if g := cur.SetGen(); g != lastGen {
			lastGen = g
			key := fmt.Sprint(cur.AppendCanonical(nil))
			if !seen[key] {
				seen[key] = true
				out = append(out, fmt.Sprintf("%s:%v", key, cur.Matches()))
			}
		}
		if !cur.Step() {
			return out
		}
	}
}

// compareVariantsLockstep sweeps all variants in lockstep against the
// reference (last) engine: identical verdicts at every index, identical
// completion hashes in ModeCompletions, and — re-sweeping each variant
// with the SetGen-skipping dedup — the identical first-seen completion
// set with verdicts.
func compareVariantsLockstep(t *testing.T, seed int64, step int, engs []*Engine) {
	t.Helper()
	ref := engs[len(engs)-1]
	size := ref.Size()
	for vi, e := range engs[:len(engs)-1] {
		if e.Size().Cmp(size) != 0 {
			t.Fatalf("seed %d step %d variant %d: sizes diverge: %v vs %v", seed, step, vi, e.Size(), size)
		}
	}
	if size.Sign() == 0 {
		return
	}
	completions := ref.Mode() == ModeCompletions
	curs := make([]*Cursor, len(engs))
	for i, e := range engs {
		curs[i] = e.NewCursor()
		if err := curs[i].Seek(big.NewInt(0)); err != nil {
			t.Fatal(err)
		}
	}
	rc := curs[len(curs)-1]
	seen := make(map[string]bool)
	var dedup []string
	for i := int64(0); ; i++ {
		want := rc.Matches()
		for vi, c := range curs[:len(curs)-1] {
			if c.Matches() != want {
				t.Fatalf("seed %d step %d index %d variant %d: verdict %v, reference %v",
					seed, step, i, vi, c.Matches(), want)
			}
			if completions && c.CompletionHash() != rc.CompletionHash() {
				t.Fatalf("seed %d step %d index %d variant %d: completion hash diverges",
					seed, step, i, vi)
			}
		}
		if completions {
			key := fmt.Sprint(rc.AppendCanonical(nil))
			if !seen[key] {
				seen[key] = true
				dedup = append(dedup, fmt.Sprintf("%s:%v", key, want))
			}
		}
		exhaust := rc.Step()
		for vi, c := range curs[:len(curs)-1] {
			if c.Step() != exhaust {
				t.Fatalf("seed %d step %d index %d variant %d: Step exhaustion diverges", seed, step, i, vi)
			}
		}
		if !exhaust {
			break
		}
	}
	if !completions {
		return
	}
	for vi, e := range engs {
		got := dedupTrace(t, e)
		if len(got) != len(dedup) {
			t.Fatalf("seed %d step %d variant %d: dedup trace has %d completions, reference saw %d",
				seed, step, vi, len(got), len(dedup))
		}
		for j := range dedup {
			if got[j] != dedup[j] {
				t.Fatalf("seed %d step %d variant %d: completion %d differs:\n got %s\nwant %s",
					seed, step, vi, j, got[j], dedup[j])
			}
		}
	}
}

// TestVariantsLockstep is the escape-hatch property test: every compile
// variant — bitset/scalar × cost/syntactic order — must produce
// bit-identical verdict sequences, completion hashes and deduplicated
// completion sets, in both modes, across Patch interleavings.
func TestVariantsLockstep(t *testing.T) {
	for _, mode := range []Mode{ModeValuations, ModeCompletions} {
		name := "valuations"
		if mode == ModeCompletions {
			name = "completions"
		}
		t.Run(name, func(t *testing.T) {
			reordered, compared := 0, 0
			for seed := int64(0); seed < 60; seed++ {
				r := rand.New(rand.NewSource(seed + 5000))
				db := randDB(r, int(seed%3))
				q := bitsetQueries[r.Intn(len(bitsetQueries))]
				engs := compileVariants(t, db, q, mode)
				if engs[0].AtomOrder() != "syntactic" {
					reordered++
				}
				if engs[3].AtomOrder() != "syntactic" {
					t.Fatalf("seed %d: SyntacticOrder engine reports order %q", seed, engs[3].AtomOrder())
				}
				if !engs[3].Size().IsInt64() || engs[3].Size().Int64() > 1<<13 {
					continue // keep the 4-way full enumeration cheap
				}
				compared++
				compareVariantsLockstep(t, seed, -1, engs)

				ver := db.Version()
				mr := rand.New(rand.NewSource(seed*131 + 7))
				for step := 0; step < 3; step++ {
					for n := 1 + mr.Intn(3); n > 0; n-- {
						mutateRandom(mr, db)
					}
					deltas, ok := db.DeltasSince(ver)
					if !ok {
						t.Fatal("delta log unavailable")
					}
					ver = db.Version()
					for _, d := range deltas {
						// Patch every variant with the same delta; if any
						// refuses, recompile all so they stay comparable.
						okAll := true
						for _, e := range engs {
							if !e.Patch(db, d) {
								okAll = false
							}
						}
						if !okAll {
							engs = compileVariants(t, db, q, mode)
							break
						}
					}
					if !engs[3].Size().IsInt64() || engs[3].Size().Int64() > 1<<13 {
						break
					}
					compareVariantsLockstep(t, seed, step, engs)
				}
			}
			if compared == 0 {
				t.Fatal("no seed was small enough to compare; the property test pinned nothing")
			}
			if reordered == 0 {
				t.Fatal("no seed produced a cost-reordered program; the order property pinned nothing")
			}
		})
	}
}

// FuzzBitsetMatches drives randomized (database, query, mode, index)
// tuples through all four compile variants and requires identical
// verdicts — and, in completions mode, identical completion hashes —
// against the scalar syntactic-order reference.
func FuzzBitsetMatches(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0), uint16(0))
	f.Add(int64(7), uint8(3), uint8(1), uint16(911))
	f.Fuzz(func(t *testing.T, seed int64, qsel, msel uint8, idx uint16) {
		r := rand.New(rand.NewSource(seed))
		db := randDB(r, int(uint64(seed)%3))
		q := bitsetQueries[int(qsel)%len(bitsetQueries)]
		mode := ModeValuations
		if msel%2 == 1 {
			mode = ModeCompletions
		}
		engs := make([]*Engine, len(variantOpts))
		for i, o := range variantOpts {
			e, err := CompileWith(db, q, mode, o)
			if err != nil {
				t.Fatal(err)
			}
			engs[i] = e
		}
		ref := engs[len(engs)-1]
		size := ref.Size()
		if size.Sign() == 0 {
			return
		}
		start := new(big.Int).Mod(big.NewInt(int64(idx)), size)
		curs := make([]*Cursor, len(engs))
		for i, e := range engs {
			curs[i] = e.NewCursor()
			if err := curs[i].Seek(start); err != nil {
				t.Fatal(err)
			}
		}
		rc := curs[len(curs)-1]
		for i := 0; i < 64; i++ {
			want := rc.Matches()
			for vi, c := range curs[:len(curs)-1] {
				if c.Matches() != want {
					t.Fatalf("seed %d q %d mode %v index %v+%d variant %d: got %v, reference %v",
						seed, qsel, mode, start, i, vi, c.Matches(), want)
				}
				if mode == ModeCompletions && c.CompletionHash() != rc.CompletionHash() {
					t.Fatalf("seed %d q %d index %v+%d variant %d: completion hash diverges",
						seed, qsel, start, i, vi)
				}
			}
			exhaust := rc.Step()
			for _, c := range curs[:len(curs)-1] {
				if c.Step() != exhaust {
					t.Fatal("Step exhaustion diverges")
				}
			}
			if !exhaust {
				return
			}
		}
	})
}
