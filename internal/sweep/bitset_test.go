package sweep

import (
	"math/big"
	"math/rand"
	"testing"

	"github.com/incompletedb/incompletedb/internal/core"
	"github.com/incompletedb/incompletedb/internal/cq"
)

// Tests pinning the bitset-compiled membership kernel against the scalar
// evaluator: for any engine, a sweep with the compiled bitmaps must
// produce exactly the verdict sequence of the same engine with bitsets
// disabled — across query shapes (BCQ, UCQ, negation, inequality),
// database styles, and mutations applied through Patch.

// bitsetQueries spans the program shapes the bitset compiler classifies
// differently: bound-variable checks, repeated-variable equality masks
// (including the single-atom flat-verdict path), disjunction, negation,
// and inequalities (which suppress the exist-only shortcut).
var bitsetQueries = []cq.Query{
	cq.MustParseBCQ("R(x, x)"), // flat verdict: one atom, equality mask only
	cq.MustParseBCQ("R(x, y) ∧ S(y)"),
	cq.MustParseBCQ("R(x, y) ∧ T(y, x)"),
	cq.MustParse("S(x) | T(y, y)"),
	cq.MustParse("R(x, x) | R(x, y) ∧ S(x)"),
	&cq.Negation{Inner: cq.MustParseBCQ("R(x, x)")},
	cq.MustParse("R(x, y) ∧ x ≠ y"),
	cq.MustParse("R(x, y) ∧ S(z) ∧ x ≠ z"),
}

// compareBitsetScalar sweeps both engines in lockstep and requires
// identical verdicts at every index; bit is expected to carry the bitmap
// plan, sc to run the scalar evaluator.
func compareBitsetScalar(t *testing.T, seed int64, step int, bit, sc *Engine) {
	t.Helper()
	if bit.Size().Cmp(sc.Size()) != 0 {
		t.Fatalf("seed %d step %d: sizes diverge: %v vs %v", seed, step, bit.Size(), sc.Size())
	}
	size := bit.Size()
	if size.Sign() == 0 {
		return
	}
	bc, scc := bit.NewCursor(), sc.NewCursor()
	if err := bc.Seek(big.NewInt(0)); err != nil {
		t.Fatal(err)
	}
	if err := scc.Seek(big.NewInt(0)); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); ; i++ {
		if bc.Matches() != scc.Matches() {
			t.Fatalf("seed %d step %d index %d: bitset verdict %v, scalar %v",
				seed, step, i, bc.Matches(), scc.Matches())
		}
		// Spot-check Seek against incremental Step on the bitset engine:
		// seeking rebuilds the cursor bitmaps from scratch.
		if i%37 == 0 {
			chk := bit.NewCursor()
			if err := chk.Seek(big.NewInt(i)); err != nil {
				t.Fatal(err)
			}
			if chk.Matches() != bc.Matches() {
				t.Fatalf("seed %d step %d index %d: Seek verdict %v, Step verdict %v",
					seed, step, i, chk.Matches(), bc.Matches())
			}
		}
		bs, ss := bc.Step(), scc.Step()
		if bs != ss {
			t.Fatalf("seed %d step %d index %d: Step exhaustion diverges", seed, step, i)
		}
		if !bs {
			return
		}
	}
}

// TestBitsetMatchesScalar is the property test: random databases ×
// bitsetQueries, sweeping the default (bitset) engine against the same
// compile with DisableBitsets, then interleaving random mutations through
// Patch on both and re-comparing.
func TestBitsetMatchesScalar(t *testing.T) {
	bitsetSeen := 0
	for seed := int64(0); seed < 100; seed++ {
		r := rand.New(rand.NewSource(seed))
		db := randDB(r, int(seed%3))
		q := bitsetQueries[r.Intn(len(bitsetQueries))]
		bit, err := Compile(db, q, ModeValuations)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := Compile(db, q, ModeValuations)
		if err != nil {
			t.Fatal(err)
		}
		sc.DisableBitsets()
		if sc.Bitset() {
			t.Fatal("DisableBitsets left the plan in place")
		}
		if bit.Bitset() {
			bitsetSeen++
		}
		compareBitsetScalar(t, seed, -1, bit, sc)

		ver := db.Version()
		mr := rand.New(rand.NewSource(seed * 101))
		for step := 0; step < 4; step++ {
			for n := 1 + mr.Intn(3); n > 0; n-- {
				mutateRandom(mr, db)
			}
			deltas, ok := db.DeltasSince(ver)
			if !ok {
				t.Fatal("delta log unavailable")
			}
			ver = db.Version()
			for _, d := range deltas {
				// Patch both engines with the same delta; on either
				// failing, recompile both so they stay comparable.
				pb, ps := bit.Patch(db, d), sc.Patch(db, d)
				if pb && ps {
					continue
				}
				if bit, err = Compile(db, q, ModeValuations); err != nil {
					t.Fatalf("seed %d step %d: recompile: %v", seed, step, err)
				}
				if sc, err = Compile(db, q, ModeValuations); err != nil {
					t.Fatalf("seed %d step %d: recompile: %v", seed, step, err)
				}
				sc.DisableBitsets()
				break
			}
			if !bit.Size().IsInt64() || bit.Size().Int64() > 1<<14 {
				break // keep full enumeration cheap
			}
			compareBitsetScalar(t, seed, step, bit, sc)
		}
	}
	if bitsetSeen == 0 {
		t.Fatal("no seed compiled a bitset plan; the property test pinned nothing")
	}
}

// TestBitsetSampleModeOff pins that ModeSample engines never carry a
// bitmap plan (sampling mutates digit domains per draw, which the plan's
// value-indexed blocks do not track).
func TestBitsetSampleModeOff(t *testing.T) {
	db := core.NewUniformDatabase([]string{"a", "b"})
	db.MustAddFact("R", core.Null(1), core.Null(2))
	eng, err := Compile(db, cq.MustParseBCQ("R(x, x)"), ModeSample)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Bitset() {
		t.Fatal("ModeSample engine compiled a bitset plan")
	}
}

// FuzzBitsetMatches drives randomized (database, query, index) triples
// through both membership kernels and requires identical verdicts.
func FuzzBitsetMatches(f *testing.F) {
	f.Add(int64(1), uint8(0), uint16(0))
	f.Add(int64(7), uint8(3), uint16(911))
	f.Fuzz(func(t *testing.T, seed int64, qsel uint8, idx uint16) {
		r := rand.New(rand.NewSource(seed))
		db := randDB(r, int(uint64(seed)%3))
		q := bitsetQueries[int(qsel)%len(bitsetQueries)]
		bit, err := Compile(db, q, ModeValuations)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := Compile(db, q, ModeValuations)
		if err != nil {
			t.Fatal(err)
		}
		sc.DisableBitsets()
		size := bit.Size()
		if size.Sign() == 0 {
			return
		}
		start := new(big.Int).Mod(big.NewInt(int64(idx)), size)
		bc, scc := bit.NewCursor(), sc.NewCursor()
		if err := bc.Seek(start); err != nil {
			t.Fatal(err)
		}
		if err := scc.Seek(start); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			if bc.Matches() != scc.Matches() {
				t.Fatalf("seed %d q %d index %v+%d: bitset %v, scalar %v",
					seed, qsel, start, i, bc.Matches(), scc.Matches())
			}
			bs, ss := bc.Step(), scc.Step()
			if bs != ss {
				t.Fatal("Step exhaustion diverges")
			}
			if !bs {
				return
			}
		}
	})
}
