package sweep

import "math/bits"

// Hash128 is a 128-bit hash value, comparable and usable as a map key.
type Hash128 struct{ Lo, Hi uint64 }

// mix64 is the splitmix64 finalizer: a cheap bijective mixer with good
// avalanche behaviour.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Lane seeds: arbitrary odd constants keeping the two 64-bit lanes of a
// fact hash decorrelated.
const (
	factSeedLo = 0x9e3779b97f4a7c15
	factSeedHi = 0xc2b2ae3d27d4eb4f
)

// factHash hashes one ground fact (rel, args...) over interned IDs. It is
// order-sensitive in the argument positions (R(a,b) and R(b,a) hash
// differently) and is the unit the order-independent completion hash sums
// over.
func factHash(rel uint32, args []uint32) Hash128 {
	lo := mix64(factSeedLo ^ uint64(rel))
	hi := mix64(factSeedHi + uint64(rel))
	for _, a := range args {
		lo = mix64(lo ^ (uint64(a) + 0x165667b19e3779f9))
		hi = mix64(hi + (uint64(a) ^ 0x27d4eb2f165667c5))
	}
	return Hash128{Lo: lo, Hi: hi}
}

// add128 returns a+b mod 2^128; sub128 returns a-b mod 2^128. Summation
// modulo 2^128 is commutative and invertible, which is exactly what the
// incremental set hash needs: facts can enter and leave the current
// completion in any order and the sum only depends on the resulting set.
func add128(a, b Hash128) Hash128 {
	lo, carry := bits.Add64(a.Lo, b.Lo, 0)
	hi, _ := bits.Add64(a.Hi, b.Hi, carry)
	return Hash128{Lo: lo, Hi: hi}
}

func sub128(a, b Hash128) Hash128 {
	lo, borrow := bits.Sub64(a.Lo, b.Lo, 0)
	hi, _ := bits.Sub64(a.Hi, b.Hi, borrow)
	return Hash128{Lo: lo, Hi: hi}
}
