package sweep

import (
	"fmt"
	"math/big"
	"math/rand"

	"github.com/incompletedb/incompletedb/internal/core"
)

// Cursor is a mutable position in an engine's enumerated valuation space:
// the current argument arena, the mixed-radix odometer digits, the cached
// query verdict, and (in ModeCompletions) the incremental completion hash.
// A cursor is single-goroutine state; shards each own one.
type Cursor struct {
	eng   *Engine
	args  []uint32 // live argument arena
	idx   []int    // current digit indices
	radix []int    // per-digit domain sizes (odometer hot path)

	verdict      bool
	verdictValid bool

	// Compiled-query evaluation scratch, preallocated per disjunct.
	asg   [][]uint32
	bound [][]bool
	trail []int32
	tp    int

	// Completion hashing state (ModeCompletions only). setGen counts the
	// exact transitions of the distinct fact-value set (see SetGen).
	factHash []Hash128
	mult     *hashMultiset
	sum      Hash128
	setGen   uint64

	// Bitset-compiled membership state (see bitset.go): the engine's plan
	// pinned at cursor creation and the cursor-local bitmap words it
	// indexes. Nil when the engine compiled no plan. In ModeCompletions
	// the bitmaps are maintained lazily — matches are rare there (once
	// per distinct completion), so per-step maintenance is deferred into
	// bitsPending and replayed (or the bitmaps rebuilt) on demand.
	bits        *bitsetPlan
	posBits     []uint64
	eqBits      []uint64
	bitsPending []pendingBit
	bitsRebuild bool

	// Scratch buffers.
	strArgs     []string
	sortIdx     []int32
	wordScratch [][]uint64 // per-atom-depth AND-chain scratch (bitset.go)
}

// NewCursor returns a cursor positioned nowhere; call Seek (or Sample)
// before inspecting it.
func (e *Engine) NewCursor() *Cursor {
	c := &Cursor{
		eng:   e,
		args:  append([]uint32(nil), e.tmplArgs...),
		idx:   make([]int, len(e.digits)),
		radix: make([]int, len(e.digits)),
	}
	for k := range e.digits {
		c.radix[k] = len(e.digits[k].dom)
	}
	maxVars := 0
	for _, d := range e.prog.disjuncts {
		c.asg = append(c.asg, make([]uint32, d.nvars))
		c.bound = append(c.bound, make([]bool, d.nvars))
		if d.nvars > maxVars {
			maxVars = d.nvars
		}
	}
	c.trail = make([]int32, maxVars)
	if e.mode == ModeCompletions {
		c.factHash = make([]Hash128, len(e.factRel))
		c.mult = newHashMultiset(len(e.factRel))
	}
	if e.bits != nil {
		c.bits = e.bits
		c.posBits = make([]uint64, e.bits.posWords)
		c.eqBits = make([]uint64, e.bits.eqWords)
	}
	return c
}

// Seek positions the cursor at index i of the enumerated space,
// 0 ≤ i < Size(), in the index order of core.ValuationSpace restricted to
// the enumerated digits. Cost is O(total slots); Step is incremental.
func (c *Cursor) Seek(i *big.Int) error {
	e := c.eng
	if i.Sign() < 0 || i.Cmp(e.size) >= 0 {
		return fmt.Errorf("sweep: index %v out of range [0, %v)", i, e.size)
	}
	rem := new(big.Int).Set(i)
	radix, dig := new(big.Int), new(big.Int)
	for k := len(e.digits) - 1; k >= 0; k-- {
		radix.SetInt64(int64(len(e.digits[k].dom)))
		rem.QuoRem(rem, radix, dig)
		c.idx[k] = int(dig.Int64())
	}
	c.rebuild()
	return nil
}

// Sample repositions the cursor on a uniformly random valuation of the
// full space, drawing one r.Intn per null in sorted-ID order — the same
// distribution and RNG stream as core.ValuationSpace.Sample. It must only
// be used on engines without pruned nulls (ModeSample or ModeCompletions);
// it panics otherwise, since the pruned digits could not be drawn.
func (c *Cursor) Sample(r *rand.Rand) {
	if c.eng.pruned > 0 {
		panic("sweep: Sample on an engine with pruned nulls")
	}
	for k := range c.eng.digits {
		c.idx[k] = r.Intn(len(c.eng.digits[k].dom))
	}
	c.rebuild()
}

// rebuild re-derives the arena, hashes and verdict from the digit indices.
func (c *Cursor) rebuild() {
	e := c.eng
	copy(c.args, e.tmplArgs)
	for k := range e.digits {
		d := &e.digits[k]
		v := d.dom[c.idx[k]]
		for _, s := range d.slots {
			c.args[e.factOff[s.fact]+s.pos] = v
		}
	}
	if e.mode == ModeCompletions {
		c.mult.reset()
		c.sum = Hash128{}
		c.setGen++ // a reposition is always a fresh completion
		for fi := range e.factRel {
			if e.dead != nil && e.dead[fi] {
				continue
			}
			args := e.factArgs(c.args, int32(fi))
			h := factHash(e.factRel[fi], args)
			c.factHash[fi] = h
			if c.mult.incr(h, e.factRel[fi], args) {
				c.sum = add128(c.sum, h)
				c.setGen++
			}
		}
	}
	if c.bits != nil {
		c.rebuildBits()
		c.bitsPending = c.bitsPending[:0]
		c.bitsRebuild = false
	}
	c.verdictValid = false
}

// Step advances the cursor to the next index, patching only the slots of
// the digits that changed. It returns false when the space is exhausted
// (the cursor then stays on the last valuation).
func (c *Cursor) Step() bool {
	k := len(c.idx) - 1
	for k >= 0 && c.idx[k]+1 >= c.radix[k] {
		k--
	}
	if k < 0 {
		return false
	}
	c.idx[k]++
	c.applyDigit(k)
	for j := k + 1; j < len(c.idx); j++ {
		if c.idx[j] != 0 {
			c.idx[j] = 0
			c.applyDigit(j)
		}
	}
	return true
}

// applyDigit repatches digit d's slots to its current domain value and
// maintains the incremental state: the per-fact hashes and completion sum
// in ModeCompletions, the membership bitmaps when a bitset plan is
// active, and the verdict cache, which survives the step when the digit
// only touches relations the query never reads.
func (c *Cursor) applyDigit(d int) {
	e := c.eng
	dg := &e.digits[d]
	v := dg.dom[c.idx[d]]
	var upd []slotUpd
	if c.bits != nil {
		upd = c.bits.upd[d]
	}
	switch {
	case e.mode == ModeCompletions:
		vi := c.idx[d]
		for si, s := range dg.slots {
			old := c.factHash[s.fact]
			ai := e.factOff[s.fact] + s.pos
			oldArg := c.args[ai]
			c.args[ai] = v
			if upd != nil && oldArg != v {
				c.deferSlotBits(&upd[si], oldArg, v)
			}
			var h Hash128
			if dg.slotHash != nil && dg.slotHash[si] != nil {
				h = dg.slotHash[si][vi]
			} else {
				h = factHash(e.factRel[s.fact], e.factArgs(c.args, s.fact))
			}
			c.factHash[s.fact] = h
			rel := e.factRel[s.fact]
			args := e.factArgs(c.args, s.fact)
			if c.mult.decrPatched(old, rel, args, s.pos, oldArg) {
				c.sum = sub128(c.sum, old)
				c.setGen++
			}
			if c.mult.incr(h, rel, args) {
				c.sum = add128(c.sum, h)
				c.setGen++
			}
		}
	case upd != nil:
		// updateSlotBits, hand-inlined: this is the hottest loop of a
		// counting sweep with an active bitset plan.
		for si := range upd {
			u := &upd[si]
			old := c.args[u.arg]
			if old == v {
				continue
			}
			c.args[u.arg] = v
			w := int(u.word)
			if u.posOff >= 0 {
				c.posBits[u.posOff+int(old)*u.posWords+w] &^= u.bit
				c.posBits[u.posOff+int(v)*u.posWords+w] |= u.bit
			}
			for i := range u.eqs {
				eq := &u.eqs[i]
				if v == c.args[eq.otherArg] {
					c.eqBits[eq.off+w] |= u.bit
				} else {
					c.eqBits[eq.off+w] &^= u.bit
				}
			}
		}
	default:
		for _, s := range dg.slots {
			c.args[e.factOff[s.fact]+s.pos] = v
		}
	}
	if dg.dirty {
		c.verdictValid = false
	}
}

// SetGen is the exact generation counter of the completion's distinct
// fact-value set: it is bumped on every transition of the set (a value
// becoming present or absent) and on every reposition, and it is
// otherwise stable. Two consecutive observations with equal SetGen
// prove the completion is unchanged — the multiset underneath verifies
// fact values, not just hashes, so the guarantee is exact even under
// 128-bit hash collisions. Dedup loops use this to skip re-verification
// entirely when a step moved only duplicated facts. Only meaningful in
// ModeCompletions.
func (c *Cursor) SetGen() uint64 { return c.setGen }

// Matches reports whether the current completion satisfies the query,
// re-evaluating only when a relevant relation changed since the last call.
func (c *Cursor) Matches() bool {
	if !c.verdictValid {
		if c.bitsPending != nil || c.bitsRebuild {
			c.syncBits()
		}
		if c.bits != nil && c.bits.flat != nil {
			c.verdict = c.evalFlat()
		} else {
			c.verdict = c.evalProgram()
		}
		c.verdictValid = true
	}
	return c.verdict
}

// MatchesUsing is Matches, but reuses inst (when non-nil) for opaque
// queries instead of materializing the completion a second time.
func (c *Cursor) MatchesUsing(inst *core.Instance) bool {
	if inst != nil && c.eng.prog.opaque != nil {
		return c.eng.prog.opaque.Eval(inst)
	}
	return c.Matches()
}

// CompletionHash returns the order-independent 128-bit hash of the current
// completion's fact set. Only meaningful in ModeCompletions.
func (c *Cursor) CompletionHash() Hash128 { return c.sum }

// AppendCanonical appends the exact canonical encoding of the current
// completion to dst and returns it: the distinct facts as (rel, args...)
// interned-ID sequences, sorted. Two cursors of the same engine are on the
// same completion iff their canonical encodings are equal — this is what
// hash-collision buckets compare. The persistent sort order makes the
// insertion sort adaptive: consecutive completions differ in few facts.
func (c *Cursor) AppendCanonical(dst []uint32) []uint32 {
	e := c.eng
	if c.sortIdx == nil {
		c.sortIdx = make([]int32, len(e.factRel))
		for i := range c.sortIdx {
			c.sortIdx[i] = int32(i)
		}
	}
	ids := c.sortIdx
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && c.factLess(ids[j], ids[j-1]); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	last := int32(-1)
	for _, fi := range ids {
		if e.dead != nil && e.dead[fi] {
			continue
		}
		if last >= 0 && c.factEqual(last, fi) {
			continue
		}
		dst = append(dst, e.factRel[fi])
		dst = append(dst, e.factArgs(c.args, fi)...)
		last = fi
	}
	return dst
}

func (c *Cursor) factLess(a, b int32) bool {
	e := c.eng
	ra, rb := e.factRel[a], e.factRel[b]
	if ra != rb {
		return ra < rb
	}
	aa, ab := e.factArgs(c.args, a), e.factArgs(c.args, b)
	for i := range aa {
		if aa[i] != ab[i] {
			return aa[i] < ab[i]
		}
	}
	return false
}

func (c *Cursor) factEqual(a, b int32) bool {
	e := c.eng
	if e.factRel[a] != e.factRel[b] {
		return false
	}
	aa, ab := e.factArgs(c.args, a), e.factArgs(c.args, b)
	for i := range aa {
		if aa[i] != ab[i] {
			return false
		}
	}
	return true
}

// Instance materializes the current completion as a core.Instance
// (resolving interned IDs back to strings). Used for opaque queries and
// when enumerated completions must be returned.
func (c *Cursor) Instance() *core.Instance {
	e := c.eng
	inst := core.NewInstance()
	for fi := range e.factRel {
		if e.dead != nil && e.dead[fi] {
			continue
		}
		args := e.factArgs(c.args, int32(fi))
		if cap(c.strArgs) < len(args) {
			c.strArgs = make([]string, len(args))
		}
		s := c.strArgs[:len(args)]
		for i, a := range args {
			s[i] = e.values.Resolve(a)
		}
		inst.Add(e.rels.Resolve(e.factRel[fi]), s...)
	}
	return inst
}

// Valuation materializes the cursor's current digit assignment as a
// core.Valuation over the enumerated nulls (pruned nulls are absent).
func (c *Cursor) Valuation() core.Valuation {
	v := make(core.Valuation, len(c.eng.digits))
	for k := range c.eng.digits {
		d := &c.eng.digits[k]
		v[d.null] = c.eng.values.Resolve(d.dom[c.idx[k]])
	}
	return v
}
