package sweep

import (
	"math/big"
	"math/rand"
	"testing"

	"github.com/incompletedb/incompletedb/internal/core"
	"github.com/incompletedb/incompletedb/internal/cq"
)

// mutateRandom applies one random mutation to db: fact adds (possibly with
// fresh nulls or fresh relations), fact removals, domain extensions and the
// occasional wholesale SetDomain (the forced-rebuild path).
func mutateRandom(r *rand.Rand, db *core.Database) {
	vals := []string{"a", "b", "c", "d"}
	rels := []struct {
		name  string
		arity int
	}{{"R", 2}, {"S", 1}, {"T", 2}, {"U", 1}, {"Junk", 2}}
	switch r.Intn(6) {
	case 0, 1, 2: // add a fact (weighted: adds drive most structure)
		rel := rels[r.Intn(len(rels))]
		if a := db.Arity(rel.name); a != 0 {
			rel.arity = a
		}
		nulls := append([]core.NullID(nil), db.Nulls()...)
		maxn := core.NullID(0)
		for _, n := range nulls {
			if n > maxn {
				maxn = n
			}
		}
		args := make([]core.Value, rel.arity)
		for i := range args {
			switch {
			case len(nulls) > 0 && r.Intn(3) == 0:
				args[i] = core.Null(nulls[r.Intn(len(nulls))])
			case r.Intn(3) == 0: // fresh null
				maxn++
				if !db.Uniform() {
					if err := db.ExtendDomain(maxn, vals[:1+r.Intn(2)]...); err != nil {
						panic(err)
					}
				}
				args[i] = core.Null(maxn)
				nulls = append(nulls, maxn)
			default:
				args[i] = core.Const(vals[r.Intn(len(vals))])
			}
		}
		db.MustAddFact(rel.name, args...)
	case 3: // remove a random fact
		facts := db.Facts()
		if len(facts) == 0 {
			return
		}
		f := facts[r.Intn(len(facts))]
		db.RemoveFact(f.Rel, f.Args...)
	case 4: // extend a domain
		if db.Uniform() {
			if err := db.ExtendUniformDomain(vals[r.Intn(len(vals))] + "u"); err != nil {
				panic(err)
			}
			return
		}
		nulls := db.Nulls()
		if len(nulls) == 0 {
			return
		}
		if err := db.ExtendDomain(nulls[r.Intn(len(nulls))], vals[r.Intn(len(vals))]+"x"); err != nil {
			panic(err)
		}
	case 5: // wholesale domain replacement: the forced-rebuild delta
		if db.Uniform() {
			return
		}
		nulls := db.Nulls()
		if len(nulls) == 0 {
			return
		}
		if err := db.SetDomain(nulls[r.Intn(len(nulls))], vals[:1+r.Intn(3)]); err != nil {
			panic(err)
		}
	}
}

// engineSemantics is everything a sweep consumer can observe: the space
// sizes and, by full enumeration, the matched-valuation count of the full
// space and (in ModeCompletions) every completion's canonical key with its
// verdict, deduplicated BOTH ways — by core-level canonical keys and by
// the engine's own hash/snapshot machinery (the path internal/count runs).
type engineSemantics struct {
	total    *big.Int
	matched  *big.Int
	comps    map[string]bool
	distinct int // distinct completions per hash + EqualsSnapshot dedup
}

func enumerateEngine(t *testing.T, eng *Engine) engineSemantics {
	t.Helper()
	s := engineSemantics{total: eng.TotalSize(), matched: new(big.Int), comps: make(map[string]bool)}
	size := eng.Size()
	if size.Sign() == 0 {
		return s
	}
	buckets := make(map[Hash128][]*Snapshot)
	cur := eng.NewCursor()
	if err := cur.Seek(big.NewInt(0)); err != nil {
		t.Fatal(err)
	}
	for {
		if cur.Matches() {
			s.matched.Add(s.matched, big.NewInt(1))
		}
		if eng.mode == ModeCompletions {
			s.comps[cur.Instance().CanonicalKey()] = cur.Matches()
			h := cur.CompletionHash()
			dup := false
			for _, snap := range buckets[h] {
				if cur.EqualsSnapshot(snap) {
					dup = true
					break
				}
			}
			if !dup {
				buckets[h] = append(buckets[h], cur.Snapshot())
				s.distinct++
			}
		}
		if !cur.Step() {
			break
		}
	}
	s.matched.Mul(s.matched, eng.Multiplier())
	return s
}

// TestPatchMatchesRecompile interleaves random mutations with Patch and
// checks, after every batch, that the patched engine is observationally
// identical to a fresh Compile of the mutated database: same space sizes,
// same matched-valuation count, same completion set with same verdicts.
func TestPatchMatchesRecompile(t *testing.T) {
	queries := []cq.Query{
		cq.MustParseBCQ("R(x, y) ∧ S(y)"),
		cq.MustParseBCQ("R(x, x)"),
		cq.MustParse("S(x) | T(y, y)"),
		&cq.Negation{Inner: cq.MustParseBCQ("R(x, y)")},
		cq.MustParse("R(x, y) ∧ x ≠ y"),
		cq.Tautology{},
		&cq.Func{Name: "has-2-facts", F: func(i *core.Instance) bool { return i.Size() >= 2 }},
		cq.MustParseBCQ("U(x)"), // relation often absent at compile time
	}
	patched, rebuilt := 0, 0
	for seed := int64(0); seed < 120; seed++ {
		r := rand.New(rand.NewSource(seed))
		base := randDB(r, int(seed%3))
		q := queries[r.Intn(len(queries))]
		for _, mode := range []Mode{ModeValuations, ModeCompletions} {
			db := base.Clone()
			eng, err := Compile(db, q, mode)
			if err != nil {
				t.Fatal(err)
			}
			ver := db.Version()
			mr := rand.New(rand.NewSource(seed*31 + int64(mode)))
			for step := 0; step < 6; step++ {
				for n := 1 + mr.Intn(3); n > 0; n-- {
					mutateRandom(mr, db)
				}
				deltas, ok := db.DeltasSince(ver)
				if !ok {
					t.Fatal("delta log unavailable")
				}
				ver = db.Version()
				for _, d := range deltas {
					if eng.Patch(db, d) {
						patched++
						continue
					}
					rebuilt++
					if eng, err = Compile(db, q, mode); err != nil {
						t.Fatalf("seed %d step %d: recompile after failed patch: %v", seed, step, err)
					}
					break
				}
				fresh, err := Compile(db, q, mode)
				if err != nil {
					t.Fatalf("seed %d step %d: fresh compile: %v", seed, step, err)
				}
				if !fresh.Size().IsInt64() || fresh.Size().Int64() > 1<<14 {
					break // keep full enumeration cheap
				}
				compareEngines(t, seed, step, eng, fresh)
			}
		}
	}
	if patched == 0 || rebuilt == 0 {
		t.Fatalf("test exercised patched=%d rebuilt=%d paths; both must be hit", patched, rebuilt)
	}
}

func compareEngines(t *testing.T, seed int64, step int, eng, fresh *Engine) {
	t.Helper()
	if eng.TotalSize().Cmp(fresh.TotalSize()) != 0 {
		t.Fatalf("seed %d step %d: patched TotalSize %v, fresh %v", seed, step, eng.TotalSize(), fresh.TotalSize())
	}
	if eng.Size().Cmp(fresh.Size()) != 0 {
		t.Fatalf("seed %d step %d: patched Size %v, fresh %v (pruned %d vs %d)",
			seed, step, eng.Size(), fresh.Size(), eng.Pruned(), fresh.Pruned())
	}
	got := enumerateEngine(t, eng)
	want := enumerateEngine(t, fresh)
	if got.matched.Cmp(want.matched) != 0 {
		t.Fatalf("seed %d step %d: patched matched %v, fresh %v", seed, step, got.matched, want.matched)
	}
	if len(got.comps) != len(want.comps) {
		t.Fatalf("seed %d step %d: patched has %d distinct completions, fresh %d",
			seed, step, len(got.comps), len(want.comps))
	}
	if got.distinct != len(got.comps) {
		t.Fatalf("seed %d step %d: patched snapshot dedup found %d distinct completions, canonical keys %d",
			seed, step, got.distinct, len(got.comps))
	}
	if want.distinct != len(want.comps) {
		t.Fatalf("seed %d step %d: fresh snapshot dedup found %d distinct completions, canonical keys %d",
			seed, step, want.distinct, len(want.comps))
	}
	for key, verdict := range want.comps {
		gv, ok := got.comps[key]
		if !ok {
			t.Fatalf("seed %d step %d: patched engine misses completion %q", seed, step, key)
		}
		if gv != verdict {
			t.Fatalf("seed %d step %d: completion %q verdict %v, fresh %v", seed, step, key, gv, verdict)
		}
	}
}
