package sweep

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"github.com/incompletedb/incompletedb/internal/core"
	"github.com/incompletedb/incompletedb/internal/cq"
)

func TestInternerRoundTrip(t *testing.T) {
	in := NewInterner()
	words := []string{"a", "b", "", "a", "?1", "\x00x", "b"}
	ids := make([]uint32, len(words))
	for i, w := range words {
		ids[i] = in.Intern(w)
	}
	if ids[0] != ids[3] || ids[1] != ids[6] {
		t.Fatalf("re-interning gave fresh ids: %v", ids)
	}
	if in.Len() != 5 {
		t.Fatalf("Len = %d, want 5", in.Len())
	}
	for i, w := range words {
		if got := in.Resolve(ids[i]); got != w {
			t.Fatalf("Resolve(Intern(%q)) = %q", w, got)
		}
		id, ok := in.Lookup(w)
		if !ok || id != ids[i] {
			t.Fatalf("Lookup(%q) = %d, %v", w, id, ok)
		}
	}
	if _, ok := in.Lookup("missing"); ok {
		t.Fatal("Lookup of uninterned string succeeded")
	}
}

func TestInternerResolvePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Resolve of unknown id did not panic")
		}
	}()
	NewInterner().Resolve(0)
}

// randDB builds a random database; kind 0 = naïve non-uniform, 1 = Codd
// non-uniform, 2 = uniform.
func randDB(r *rand.Rand, kind int) *core.Database {
	doms := [][]string{{"a"}, {"a", "b"}, {"a", "b", "c"}}
	var db *core.Database
	uniform := kind == 2
	if uniform {
		db = core.NewUniformDatabase(doms[r.Intn(len(doms))])
	} else {
		db = core.NewDatabase()
	}
	nextNull := 1
	schema := map[string]int{"R": 2, "S": 1, "T": 2}
	for rel, arity := range schema {
		for i, nf := 0, r.Intn(3); i < nf; i++ {
			args := make([]core.Value, arity)
			for j := range args {
				switch {
				case kind == 1 || r.Intn(2) == 0: // Codd tables get fresh nulls
					args[j] = core.Null(core.NullID(nextNull))
					nextNull++
				case nextNull > 1 && r.Intn(2) == 0:
					args[j] = core.Null(core.NullID(1 + r.Intn(nextNull-1)))
				default:
					args[j] = core.Const([]string{"a", "b", "c"}[r.Intn(3)])
				}
			}
			db.MustAddFact(rel, args...)
		}
	}
	if !uniform {
		for _, n := range db.Nulls() {
			db.SetDomain(n, doms[r.Intn(len(doms))])
		}
	}
	return db
}

// TestCursorMatchesReference sweeps random databases and checks every
// cursor verdict and completion hash against Database.Apply + Query.Eval +
// Instance.CanonicalKey.
func TestCursorMatchesReference(t *testing.T) {
	queries := []cq.Query{
		cq.MustParseBCQ("R(x, y) ∧ S(y)"),
		cq.MustParseBCQ("R(x, x)"),
		cq.MustParse("S(x) | T(y, y)"),
		&cq.Negation{Inner: cq.MustParseBCQ("R(x, y)")},
		cq.MustParse("R(x, y) ∧ x ≠ y"),
		cq.Tautology{},
		&cq.Func{Name: "has-3-facts", F: func(i *core.Instance) bool { return i.Size() >= 3 }},
	}
	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		db := randDB(r, int(seed%3))
		q := queries[r.Intn(len(queries))]
		for _, mode := range []Mode{ModeValuations, ModeCompletions} {
			eng, err := Compile(db, q, mode)
			if err != nil {
				t.Fatal(err)
			}
			space, err := db.ValuationSpace()
			if err != nil {
				t.Fatal(err)
			}
			if eng.TotalSize().Cmp(space.Size()) != 0 {
				t.Fatalf("seed %d: TotalSize %v != space %v", seed, eng.TotalSize(), space.Size())
			}
			if mode == ModeCompletions && eng.Pruned() != 0 {
				t.Fatalf("seed %d: completions mode pruned %d nulls", seed, eng.Pruned())
			}
			checkSweepAgainstReference(t, seed, db, q, eng)
		}
	}
}

func checkSweepAgainstReference(t *testing.T, seed int64, db *core.Database, q cq.Query, eng *Engine) {
	t.Helper()
	size := eng.Size()
	if !size.IsInt64() || size.Int64() > 1<<16 {
		t.Fatalf("seed %d: random space unexpectedly huge (%v)", seed, size)
	}
	if size.Sign() == 0 {
		return
	}
	cur := eng.NewCursor()
	if err := cur.Seek(big.NewInt(0)); err != nil {
		t.Fatal(err)
	}
	hashOf := make(map[string]Hash128) // canonical key -> completion hash
	for i := int64(0); i < size.Int64(); i++ {
		// An independent cursor sought directly to i must agree with the
		// stepped one (Seek vs incremental Step).
		chk := eng.NewCursor()
		if err := chk.Seek(big.NewInt(i)); err != nil {
			t.Fatal(err)
		}
		// Reference verdict via Apply on the full valuation: extend the
		// cursor's (possibly pruned) valuation with arbitrary domain
		// values for pruned nulls — the verdict must not depend on them.
		v := cur.Valuation()
		for _, n := range db.Nulls() {
			if _, ok := v[n]; !ok {
				dom := db.Domain(n)
				v[n] = dom[int(i)%len(dom)]
			}
		}
		inst := db.Apply(v)
		want := q.Eval(inst)
		if got := cur.Matches(); got != want {
			t.Fatalf("seed %d idx %d: Matches = %v, reference %v (valuation %v)", seed, i, got, want, v)
		}
		if got := chk.Matches(); got != want {
			t.Fatalf("seed %d idx %d: seeked Matches = %v, reference %v", seed, i, got, want)
		}
		if eng.mode == ModeCompletions {
			if cur.CompletionHash() != chk.CompletionHash() {
				t.Fatalf("seed %d idx %d: stepped and seeked completion hashes differ", seed, i)
			}
			key := inst.CanonicalKey()
			if prev, ok := hashOf[key]; ok {
				if prev != cur.CompletionHash() {
					t.Fatalf("seed %d idx %d: same completion, different hashes", seed, i)
				}
			} else {
				hashOf[key] = cur.CompletionHash()
			}
			if got, want := cur.Instance().CanonicalKey(), key; got != want {
				t.Fatalf("seed %d idx %d: materialized instance differs:\n%s\nvs\n%s", seed, i, got, want)
			}
		}
		cur.Step()
	}
	if eng.mode == ModeCompletions {
		// Distinct canonical keys must get distinct hashes here (128-bit
		// collisions on random 5-fact instances would indicate a bug, not
		// bad luck).
		seen := make(map[Hash128]string)
		for key, h := range hashOf {
			if other, dup := seen[h]; dup && other != key {
				t.Fatalf("seed %d: hash collision between distinct completions", seed)
			}
			seen[h] = key
		}
	}
}

// TestSnapshotEquality: a cursor equals exactly the snapshots of its own
// completion, across every pair of valuations.
func TestSnapshotEquality(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		db := randDB(r, int(seed%3))
		eng, err := Compile(db, cq.Tautology{}, ModeCompletions)
		if err != nil {
			t.Fatal(err)
		}
		size := eng.Size()
		if size.Sign() == 0 || size.Int64() > 512 {
			continue
		}
		n := size.Int64()
		snaps := make([]*Snapshot, n)
		keys := make([]string, n)
		cur := eng.NewCursor()
		for i := int64(0); i < n; i++ {
			cur.Seek(big.NewInt(i))
			snaps[i] = cur.Snapshot()
			keys[i] = cur.Instance().CanonicalKey()
		}
		for i := int64(0); i < n; i++ {
			cur.Seek(big.NewInt(i))
			for j := int64(0); j < n; j++ {
				want := keys[i] == keys[j]
				if got := cur.EqualsSnapshot(snaps[j]); got != want {
					t.Fatalf("seed %d: EqualsSnapshot(%d, %d) = %v, want %v", seed, i, j, got, want)
				}
			}
		}
	}
}

// TestRelevantNullPruning: nulls in relations outside sig(q) are factored
// out; the count over the pruned space times the multiplier equals the
// unpruned sweep.
func TestRelevantNullPruning(t *testing.T) {
	db := core.NewDatabase()
	db.MustAddFact("R", core.Null(1), core.Null(2))
	db.MustAddFact("Junk", core.Null(3), core.Const("x"))
	db.MustAddFact("Junk2", core.Null(4))
	db.SetDomain(1, []string{"a", "b"})
	db.SetDomain(2, []string{"a", "b", "c"})
	db.SetDomain(3, []string{"u", "v", "w", "z"})
	db.SetDomain(4, []string{"p", "q"})
	q := cq.MustParseBCQ("R(x, x)")

	eng, err := Compile(db, q, ModeValuations)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Pruned() != 2 {
		t.Fatalf("pruned %d nulls, want 2", eng.Pruned())
	}
	if eng.Size().Int64() != 6 || eng.Multiplier().Int64() != 8 || eng.TotalSize().Int64() != 48 {
		t.Fatalf("size/multiplier/total = %v/%v/%v, want 6/8/48", eng.Size(), eng.Multiplier(), eng.TotalSize())
	}

	// Opaque queries must not prune: the engine cannot know the signature.
	opaque, err := Compile(db, &cq.Func{Name: "f", F: func(*core.Instance) bool { return true }}, ModeValuations)
	if err != nil {
		t.Fatal(err)
	}
	if opaque.Pruned() != 0 || !opaque.Opaque() {
		t.Fatalf("opaque engine pruned %d (opaque=%v)", opaque.Pruned(), opaque.Opaque())
	}

	// TRUE mentions no relation: everything is pruned, one visit stands
	// for the whole space.
	taut, err := Compile(db, cq.Tautology{}, ModeValuations)
	if err != nil {
		t.Fatal(err)
	}
	if taut.Size().Int64() != 1 || taut.Multiplier().Int64() != 48 {
		t.Fatalf("tautology size/multiplier = %v/%v, want 1/48", taut.Size(), taut.Multiplier())
	}
}

// TestSampleMatchesValuationSpace: Cursor.Sample consumes the same RNG
// stream and lands on the same valuation as core.ValuationSpace.Sample.
func TestSampleMatchesValuationSpace(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		db := randDB(r, int(seed%3))
		space, err := db.ValuationSpace()
		if err != nil {
			t.Fatal(err)
		}
		if space.Size().Sign() == 0 {
			continue
		}
		eng, err := Compile(db, cq.Tautology{}, ModeSample)
		if err != nil {
			t.Fatal(err)
		}
		cur := eng.NewCursor()
		r1 := rand.New(rand.NewSource(seed * 77))
		r2 := rand.New(rand.NewSource(seed * 77))
		for s := 0; s < 10; s++ {
			want, err := space.Sample(r1, nil)
			if err != nil {
				t.Fatal(err)
			}
			cur.Sample(r2)
			got := cur.Valuation()
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("seed %d sample %d: %v vs %v", seed, s, got, want)
			}
		}
	}
}

// TestSeekOutOfRange: invalid indices are rejected.
func TestSeekOutOfRange(t *testing.T) {
	db := core.NewUniformDatabase([]string{"a", "b"})
	db.MustAddFact("R", core.Null(1))
	eng, err := Compile(db, cq.Tautology{}, ModeCompletions)
	if err != nil {
		t.Fatal(err)
	}
	cur := eng.NewCursor()
	if err := cur.Seek(big.NewInt(-1)); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := cur.Seek(big.NewInt(2)); err == nil {
		t.Fatal("index == size accepted")
	}
}

// TestStepExhaustion: the cursor reports exhaustion exactly at the end.
func TestStepExhaustion(t *testing.T) {
	db := core.NewUniformDatabase([]string{"a", "b", "c"})
	db.MustAddFact("R", core.Null(1), core.Null(2))
	eng, err := Compile(db, cq.MustParseBCQ("R(x, x)"), ModeValuations)
	if err != nil {
		t.Fatal(err)
	}
	cur := eng.NewCursor()
	if err := cur.Seek(big.NewInt(0)); err != nil {
		t.Fatal(err)
	}
	steps := 1
	for cur.Step() {
		steps++
	}
	if steps != 9 {
		t.Fatalf("stepped through %d valuations, want 9", steps)
	}
}
