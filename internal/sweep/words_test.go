package sweep

import (
	"fmt"
	"math/bits"
	"math/rand"
	"testing"
)

// Parity tests for the unrolled word helpers of words.go: every helper
// must agree with the obvious straight loop on random words across
// lengths that hit the empty, tail-only, exact-multiple-of-4 and
// unrolled+tail shapes.

func randWords(r *rand.Rand, n int) []uint64 {
	ws := make([]uint64, n)
	for i := range ws {
		switch r.Intn(4) {
		case 0:
			ws[i] = 0
		case 1:
			ws[i] = ^uint64(0)
		default:
			ws[i] = r.Uint64()
		}
	}
	return ws
}

func TestWordHelpersMatchStraightLoops(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	lengths := []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64, 65, 129}
	for _, n := range lengths {
		for trial := 0; trial < 20; trial++ {
			a, b := randWords(r, n), randWords(r, n)

			wantAnd := make([]uint64, n)
			wantAny, wantAndAny := false, false
			wantPop, wantAndPop := 0, 0
			for i := 0; i < n; i++ {
				wantAnd[i] = a[i] & b[i]
				wantAny = wantAny || a[i] != 0
				wantAndAny = wantAndAny || a[i]&b[i] != 0
				wantPop += bits.OnesCount64(a[i])
				wantAndPop += bits.OnesCount64(a[i] & b[i])
			}

			dst := append([]uint64(nil), a...)
			andInto(dst, b)
			for i := range dst {
				if dst[i] != wantAnd[i] {
					t.Fatalf("n=%d trial %d: andInto word %d = %#x, want %#x", n, trial, i, dst[i], wantAnd[i])
				}
			}
			got := make([]uint64, n)
			copyAnd(got, a, b)
			for i := range got {
				if got[i] != wantAnd[i] {
					t.Fatalf("n=%d trial %d: copyAnd word %d = %#x, want %#x", n, trial, i, got[i], wantAnd[i])
				}
			}
			if anyNonzero(a) != wantAny {
				t.Fatalf("n=%d trial %d: anyNonzero = %v, want %v", n, trial, anyNonzero(a), wantAny)
			}
			if andAnyNonzero(a, b) != wantAndAny {
				t.Fatalf("n=%d trial %d: andAnyNonzero = %v, want %v", n, trial, andAnyNonzero(a, b), wantAndAny)
			}
			if popcountWords(a) != wantPop {
				t.Fatalf("n=%d trial %d: popcountWords = %d, want %d", n, trial, popcountWords(a), wantPop)
			}
			if andPopcountWords(a, b) != wantAndPop {
				t.Fatalf("n=%d trial %d: andPopcountWords = %d, want %d", n, trial, andPopcountWords(a, b), wantAndPop)
			}
		}
	}
}

// TestWordHelpersLongerSource: helpers truncate to the destination (or
// first operand) length, so a longer second operand is fine.
func TestWordHelpersLongerSource(t *testing.T) {
	a := []uint64{0xF0, 0x0F}
	b := []uint64{0xFF, 0xFF, 0xFF, 0xFF}
	dst := append([]uint64(nil), a...)
	andInto(dst, b)
	if dst[0] != 0xF0 || dst[1] != 0x0F {
		t.Fatalf("andInto with longer src: %#x", dst)
	}
	if got := andPopcountWords(a, b); got != 8 {
		t.Fatalf("andPopcountWords with longer b = %d, want 8", got)
	}
	if !andAnyNonzero(a, b) {
		t.Fatal("andAnyNonzero with longer b = false")
	}
}

// unrolledAndPopcount is the 4-word-unrolled alternative the benchmark
// compares against; measurement picked the straight loop for the helper
// (OnesCount64 already saturates the ALU, unrolling only adds register
// pressure), and this pins that the choice stays right.
func unrolledAndPopcount(a, b []uint64) int {
	n := len(a)
	b = b[:n]
	c := 0
	i := 0
	for ; i+4 <= n; i += 4 {
		c += bits.OnesCount64(a[i]&b[i]) + bits.OnesCount64(a[i+1]&b[i+1]) +
			bits.OnesCount64(a[i+2]&b[i+2]) + bits.OnesCount64(a[i+3]&b[i+3])
	}
	for ; i < n; i++ {
		c += bits.OnesCount64(a[i] & b[i])
	}
	return c
}

// straightAndInto is the un-unrolled alternative to the shipped helper.
func straightAndInto(dst, src []uint64) {
	src = src[:len(dst)]
	for i := range dst {
		dst[i] &= src[i]
	}
}

// straightAnyNonzero is the early-exit-per-word alternative.
func straightAnyNonzero(ws []uint64) bool {
	for _, w := range ws {
		if w != 0 {
			return true
		}
	}
	return false
}

var (
	sinkInt  int
	sinkBool bool
)

// BenchmarkAndPopcountWords pins the helper (straight loop) against the
// unrolled alternative at the bitmap widths the sweep runs with.
func BenchmarkAndPopcountWords(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{4, 16, 64, 256} {
		x, y := randWords(r, n), randWords(r, n)
		b.Run(fmt.Sprintf("helper/words=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkInt = andPopcountWords(x, y)
			}
		})
		b.Run(fmt.Sprintf("unrolled/words=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkInt = unrolledAndPopcount(x, y)
			}
		})
	}
}

// BenchmarkWordHelpers pins the unrolled AND-chain helpers — the ones
// evalFlat actually runs — against their straight-loop alternatives.
func BenchmarkWordHelpers(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{16, 64} {
		x, y := randWords(r, n), randWords(r, n)
		zero := make([]uint64, n) // all-zero: the full-scan worst case
		b.Run(fmt.Sprintf("andInto/unrolled/words=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				andInto(x, y)
			}
		})
		b.Run(fmt.Sprintf("andInto/straight/words=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				straightAndInto(x, y)
			}
		})
		b.Run(fmt.Sprintf("anyNonzero/unrolled/words=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkBool = anyNonzero(zero)
			}
		})
		b.Run(fmt.Sprintf("anyNonzero/straight/words=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkBool = straightAnyNonzero(zero)
			}
		})
	}
}
