package sweep

import (
	"bytes"
	"testing"
)

// FuzzInterner feeds \x00-separated token lists through an Interner and
// checks the round-trip invariants: Resolve(Intern(s)) == s, re-interning
// is stable, IDs are dense in first-sight order, and Lookup agrees with
// Intern.
func FuzzInterner(f *testing.F) {
	f.Add([]byte("a\x00b\x00a"))
	f.Add([]byte(""))
	f.Add([]byte("\x00\x00"))
	f.Add([]byte("?1\x00?1\x00?2\x00constant with spaces\x00\x01esc"))
	f.Add([]byte("π\x00heavy ∧ unicode\x00π"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tokens := bytes.Split(data, []byte{0})
		in := NewInterner()
		first := make(map[string]uint32)
		next := uint32(0)
		for _, tok := range tokens {
			s := string(tok)
			id := in.Intern(s)
			if want, seen := first[s]; seen {
				if id != want {
					t.Fatalf("re-intern %q: id %d, first %d", s, id, want)
				}
			} else {
				if id != next {
					t.Fatalf("intern %q: id %d, want dense %d", s, id, next)
				}
				first[s] = id
				next++
			}
			if got := in.Resolve(id); got != s {
				t.Fatalf("Resolve(Intern(%q)) = %q", s, got)
			}
			lid, ok := in.Lookup(s)
			if !ok || lid != id {
				t.Fatalf("Lookup(%q) = %d, %v; want %d", s, lid, ok, id)
			}
		}
		if in.Len() != len(first) {
			t.Fatalf("Len = %d, want %d", in.Len(), len(first))
		}
	})
}
