package sweep

import (
	"fmt"
	"strings"
)

// Cost-driven atom ordering: the compiler greedily reorders each
// disjunct's atoms to maximize early bound-variable checks. An atom
// whose argument positions are already bound (or repeat a variable the
// atom itself introduced earlier) turns into bitmap ANDs — or scalar
// equality checks — that prune candidates before any fresh variable is
// bound, so the backtracking tree stays narrow. The greedy rule is
// most-bound-first, tie-broken on smaller relation cardinality, then on
// syntactic position (stable).
//
// Reordering after compileBCQ is semantics-preserving: variable slots
// were assigned by first occurrence over the syntactic order and are
// never renumbered, homomorphism existence does not depend on the order
// atoms are matched in, and the inequality pairs reference slots, not
// positions. Both the scalar evaluator and the bitset compiler consume
// the reordered atom list, so the two paths always agree on the order.
// Patch never recompiles the program, so the order chosen at Compile
// time persists across deltas (cardinality tie-breaks reflect the
// compile-time fact counts).

// orderAtoms reorders every disjunct of the compiled program (unless the
// engine was compiled with SyntacticOrder) and records the result in
// orderNote.
func (e *Engine) orderAtoms() {
	e.orderNote = "syntactic"
	if e.syntactic || e.prog.opaque != nil {
		return
	}
	var parts []string
	for di := range e.prog.disjuncts {
		d := &e.prog.disjuncts[di]
		ord := e.orderDisjunct(d)
		if ord == nil {
			continue
		}
		if len(e.prog.disjuncts) > 1 {
			parts = append(parts, fmt.Sprintf("d%d:%v", di, ord))
		} else {
			parts = append(parts, fmt.Sprintf("%v", ord))
		}
	}
	if len(parts) > 0 {
		e.orderNote = "cost " + strings.Join(parts, " ")
	}
}

// orderDisjunct greedily reorders d's atoms in place and returns the
// chosen permutation (order[i] = syntactic index of the atom evaluated
// i-th), or nil when the order is unchanged or the disjunct is not
// orderable (statically unsatisfiable disjuncts are never evaluated and
// may carry sentinel relation IDs).
func (e *Engine) orderDisjunct(d *compiledBCQ) []int {
	n := len(d.atoms)
	if !d.ok || n < 2 {
		return nil
	}
	bound := make([]bool, d.nvars)
	taken := make([]bool, n)
	order := make([]int, 0, n)
	for len(order) < n {
		best, bestScore, bestCard := -1, -1, 0
		for i := 0; i < n; i++ {
			if taken[i] {
				continue
			}
			a := &d.atoms[i]
			score := 0
			for p, v := range a.vars {
				if bound[v] {
					score++
					continue
				}
				for q := 0; q < p; q++ {
					if a.vars[q] == v {
						score++
						break
					}
				}
			}
			card := len(e.relFacts[a.rel])
			if score > bestScore || (score == bestScore && card < bestCard) {
				best, bestScore, bestCard = i, score, card
			}
		}
		order = append(order, best)
		taken[best] = true
		for _, v := range d.atoms[best].vars {
			bound[v] = true
		}
	}
	identity := true
	for i, o := range order {
		if i != o {
			identity = false
			break
		}
	}
	if identity {
		return nil
	}
	atoms := make([]compiledAtom, n)
	for i, o := range order {
		atoms[i] = d.atoms[o]
	}
	d.atoms = atoms
	return order
}

// AtomOrder describes the atom evaluation order the engine compiled:
// "syntactic" when every disjunct kept the query's own order, otherwise
// the cost-chosen permutation(s), e.g. "cost [1 0]".
func (e *Engine) AtomOrder() string { return e.orderNote }
