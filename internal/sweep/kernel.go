package sweep

import "math/big"

// Kernel identifies the accumulator width a brute-force sweep can run its
// per-shard tallies on. The selection is a proof, not a guess: a sweep's
// final count is bounded by the size of the valuation space it enumerates,
// so when that bound fits in one (or two) machine words every intermediate
// tally provably does too and the whole shard runs on native integers.
// Counts beyond two words use big.Int arithmetic throughout.
type Kernel string

const (
	// KernelUint64 holds tallies in a single machine word.
	KernelUint64 Kernel = "uint64"
	// KernelUint128 holds tallies in a two-word lo/hi pair with carries.
	KernelUint128 Kernel = "uint128"
	// KernelBigInt is the arbitrary-precision fallback.
	KernelBigInt Kernel = "bigint"
)

// KernelForSize returns the narrowest kernel whose width provably holds
// any count of a sweep over a space of the given total size.
func KernelForSize(total *big.Int) Kernel {
	switch bl := total.BitLen(); {
	case bl <= 64:
		return KernelUint64
	case bl <= 128:
		return KernelUint128
	default:
		return KernelBigInt
	}
}

// Kernel returns the accumulator kernel counting sweeps over this engine
// select, derived from the full valuation-space size (counts of the full
// space bound counts of the pruned one times the multiplier).
func (e *Engine) Kernel() Kernel { return KernelForSize(e.total) }

// Wider returns the wider of the two kernels — the one whose tallies
// subsume the other's. The empty kernel is narrower than every real one.
func (k Kernel) Wider(o Kernel) Kernel {
	if kernelRank(o) > kernelRank(k) {
		return o
	}
	return k
}

func kernelRank(k Kernel) int {
	switch k {
	case KernelUint64:
		return 1
	case KernelUint128:
		return 2
	case KernelBigInt:
		return 3
	default:
		return 0
	}
}
