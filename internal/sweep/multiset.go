package sweep

// hashMultiset is a linear-probing multiset of fact values keyed by
// their 128-bit hashes, replacing a map on the per-slot hot path of
// completion sweeps: the keys are already uniform hashes, so probing
// needs no re-hashing, and increments/decrements stay branch-cheap.
// Slots are never deleted (a 1→0 decrement keeps the claimed slot so
// probe chains stay intact); stale zero-count slots are dropped on
// growth.
//
// The key words live in two parallel arrays rather than one []Hash128:
// the low words are the 64-bit prefilter level, so the common probe miss
// (an occupied slot holding a different key) costs one load and one word
// compare against a dense array, and the high words are only touched to
// confirm a low-word match.
//
// Each slot additionally pins the exact fact value (rel, args...) it
// counts, verified on every probe hit: the multiset tracks the distinct
// fact *values* of the current completion, so even a 128-bit fact-hash
// collision cannot corrupt the presence transitions it reports — the
// transitions are what Cursor.SetGen builds its exactness guarantee on.
type hashMultiset struct {
	mask    uint32
	lo      []uint64 // low key words: the prefilter level
	hi      []uint64 // high key words: touched only on a lo match
	counts  []int32
	used    []bool
	valOff  []int32  // per slot: offset of the exact value in vals
	valN    []int32  // per slot: value length, 1 + arity
	vals    []uint32 // append-only value arena: (rel, args...) runs
	claimed int      // used slots, including zero-count ones
	live    int      // values with a positive count: the distinct-set size
}

func newHashMultiset(capacity int) *hashMultiset {
	size := 16
	for size < 4*capacity {
		size *= 2
	}
	return &hashMultiset{
		mask:   uint32(size - 1),
		lo:     make([]uint64, size),
		hi:     make([]uint64, size),
		counts: make([]int32, size),
		used:   make([]bool, size),
		valOff: make([]int32, size),
		valN:   make([]int32, size),
	}
}

// reset empties the multiset, keeping the allocations.
func (t *hashMultiset) reset() {
	for i := range t.used {
		t.used[i] = false
		t.counts[i] = 0
	}
	t.vals = t.vals[:0]
	t.claimed = 0
	t.live = 0
}

// valMatches reports whether slot i holds exactly the value (rel,
// args...), with position patch (when patch ≥ 0) taken at patchArg
// instead of args[patch] — the caller's arena already holds the
// post-patch value when the pre-patch one is being removed.
func (t *hashMultiset) valMatches(i uint32, rel uint32, args []uint32, patch int32, patchArg uint32) bool {
	if int(t.valN[i]) != len(args)+1 {
		return false
	}
	v := t.vals[t.valOff[i] : t.valOff[i]+t.valN[i]]
	if v[0] != rel {
		return false
	}
	for k := range args {
		a := args[k]
		if int32(k) == patch {
			a = patchArg
		}
		if v[k+1] != a {
			return false
		}
	}
	return true
}

// incr adds one occurrence of the value (rel, args...) hashing to h and
// reports whether it just became present (count 0 → 1).
func (t *hashMultiset) incr(h Hash128, rel uint32, args []uint32) bool {
	i := uint32(h.Lo) & t.mask
	for t.used[i] {
		if t.lo[i] == h.Lo && t.hi[i] == h.Hi && t.valMatches(i, rel, args, -1, 0) {
			t.counts[i]++
			// A claimed slot can sit at count 0 (slots are never
			// deleted); re-entering through it is a 0 → 1 transition.
			if t.counts[i] == 1 {
				t.live++
				return true
			}
			return false
		}
		i = (i + 1) & t.mask
	}
	t.used[i] = true
	t.lo[i] = h.Lo
	t.hi[i] = h.Hi
	t.counts[i] = 1
	t.valOff[i] = int32(len(t.vals))
	t.valN[i] = int32(len(args) + 1)
	t.vals = append(t.vals, rel)
	t.vals = append(t.vals, args...)
	t.claimed++
	t.live++
	if t.claimed*2 > len(t.lo) {
		t.grow()
	}
	return true
}

// decr removes one occurrence of the value (rel, args...) hashing to h
// and reports whether it just became absent (count 1 → 0). The value
// must be present.
func (t *hashMultiset) decr(h Hash128, rel uint32, args []uint32) bool {
	return t.decrPatched(h, rel, args, -1, 0)
}

// decrPatched is decr for a value whose argument at position patch has
// already been overwritten in args: the removed (pre-patch) value reads
// patchArg there. The value must be present.
func (t *hashMultiset) decrPatched(h Hash128, rel uint32, args []uint32, patch int32, patchArg uint32) bool {
	i := uint32(h.Lo) & t.mask
	for {
		if !t.used[i] {
			panic("sweep: decrement of an absent completion fact")
		}
		if t.lo[i] == h.Lo && t.hi[i] == h.Hi && t.valMatches(i, rel, args, patch, patchArg) {
			t.counts[i]--
			if t.counts[i] == 0 {
				t.live--
				return true
			}
			return false
		}
		i = (i + 1) & t.mask
	}
}

// contains reports whether the value (rel, args...) hashing to h is
// currently present (count > 0).
func (t *hashMultiset) contains(h Hash128, rel uint32, args []uint32) bool {
	i := uint32(h.Lo) & t.mask
	for t.used[i] {
		if t.lo[i] == h.Lo && t.hi[i] == h.Hi && t.valMatches(i, rel, args, -1, 0) {
			return t.counts[i] > 0
		}
		i = (i + 1) & t.mask
	}
	return false
}

// grow doubles the table, dropping stale zero-count slots and compacting
// the value arena to the live values.
func (t *hashMultiset) grow() {
	oldLo, oldHi, oldCounts, oldUsed := t.lo, t.hi, t.counts, t.used
	oldOff, oldN, oldVals := t.valOff, t.valN, t.vals
	size := 2 * len(oldLo)
	t.mask = uint32(size - 1)
	t.lo = make([]uint64, size)
	t.hi = make([]uint64, size)
	t.counts = make([]int32, size)
	t.used = make([]bool, size)
	t.valOff = make([]int32, size)
	t.valN = make([]int32, size)
	t.vals = make([]uint32, 0, len(oldVals))
	t.claimed = 0
	for i, u := range oldUsed {
		if !u || oldCounts[i] == 0 {
			continue
		}
		j := uint32(oldLo[i]) & t.mask
		for t.used[j] {
			j = (j + 1) & t.mask
		}
		t.used[j] = true
		t.lo[j] = oldLo[i]
		t.hi[j] = oldHi[i]
		t.counts[j] = oldCounts[i]
		t.valOff[j] = int32(len(t.vals))
		t.valN[j] = oldN[i]
		t.vals = append(t.vals, oldVals[oldOff[i]:oldOff[i]+oldN[i]]...)
		t.claimed++
	}
}
