package sweep

// hashMultiset is a linear-probing multiset of Hash128 keys, replacing a
// map[Hash128]int32 on the per-slot hot path of completion sweeps: the
// keys are already uniform hashes, so probing needs no re-hashing, and
// increments/decrements stay branch-cheap. Slots are never deleted
// (a 1→0 decrement keeps the claimed slot so probe chains stay intact);
// stale zero-count slots are dropped on growth.
type hashMultiset struct {
	mask    uint32
	keys    []Hash128
	counts  []int32
	used    []bool
	claimed int // used slots, including zero-count ones
}

func newHashMultiset(capacity int) *hashMultiset {
	size := 16
	for size < 4*capacity {
		size *= 2
	}
	return &hashMultiset{
		mask:   uint32(size - 1),
		keys:   make([]Hash128, size),
		counts: make([]int32, size),
		used:   make([]bool, size),
	}
}

// reset empties the multiset, keeping the allocation.
func (t *hashMultiset) reset() {
	for i := range t.used {
		t.used[i] = false
		t.counts[i] = 0
	}
	t.claimed = 0
}

// slot returns the index of h's slot, claiming a fresh one if absent.
func (t *hashMultiset) slot(h Hash128) uint32 {
	i := uint32(h.Lo) & t.mask
	for t.used[i] {
		if t.keys[i] == h {
			return i
		}
		i = (i + 1) & t.mask
	}
	t.used[i] = true
	t.keys[i] = h
	t.claimed++
	return i
}

// incr adds one occurrence of h and reports whether h just became present
// (count 0 → 1).
func (t *hashMultiset) incr(h Hash128) bool {
	i := t.slot(h)
	t.counts[i]++
	if t.counts[i] == 1 {
		if t.claimed*2 > len(t.keys) {
			t.grow()
		}
		return true
	}
	return false
}

// decr removes one occurrence of h and reports whether h just became
// absent (count 1 → 0). h must be present.
func (t *hashMultiset) decr(h Hash128) bool {
	i := t.slot(h)
	t.counts[i]--
	return t.counts[i] == 0
}

// grow doubles the table, dropping stale zero-count slots.
func (t *hashMultiset) grow() {
	oldKeys, oldCounts, oldUsed := t.keys, t.counts, t.used
	size := 2 * len(oldKeys)
	t.mask = uint32(size - 1)
	t.keys = make([]Hash128, size)
	t.counts = make([]int32, size)
	t.used = make([]bool, size)
	t.claimed = 0
	for i, u := range oldUsed {
		if !u || oldCounts[i] == 0 {
			continue
		}
		j := uint32(oldKeys[i].Lo) & t.mask
		for t.used[j] {
			j = (j + 1) & t.mask
		}
		t.used[j] = true
		t.keys[j] = oldKeys[i]
		t.counts[j] = oldCounts[i]
		t.claimed++
	}
}
