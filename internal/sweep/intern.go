package sweep

import "fmt"

// Interner assigns dense uint32 IDs to strings, so the hot sweep loops can
// compare and hash values as machine words instead of strings. IDs are
// assigned in first-intern order starting at 0 and never reused, so an
// Interner round-trips: Resolve(Intern(s)) == s for every interned s.
type Interner struct {
	ids  map[string]uint32
	strs []string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]uint32)}
}

// Intern returns the ID of s, assigning the next free ID on first sight.
func (in *Interner) Intern(s string) uint32 {
	if id, ok := in.ids[s]; ok {
		return id
	}
	id := uint32(len(in.strs))
	in.ids[s] = id
	in.strs = append(in.strs, s)
	return id
}

// Lookup returns the ID of s if it was interned before.
func (in *Interner) Lookup(s string) (uint32, bool) {
	id, ok := in.ids[s]
	return id, ok
}

// Resolve returns the string with the given ID. It panics if the ID was
// never assigned.
func (in *Interner) Resolve(id uint32) string {
	if int(id) >= len(in.strs) {
		panic(fmt.Sprintf("sweep: resolve of unknown intern id %d (have %d)", id, len(in.strs)))
	}
	return in.strs[id]
}

// Len returns the number of interned strings.
func (in *Interner) Len() int { return len(in.strs) }
