package sweep

import (
	"math/big"

	"github.com/incompletedb/incompletedb/internal/core"
)

// Patch applies one database mutation record to the compiled engine in
// place, avoiding a recompile. db is the database the delta was applied to
// (i.e. already mutated). It reports whether the patch succeeded; false
// means the delta cannot be maintained incrementally (the engine's interned
// structures would need renumbering) and the caller must recompile.
//
// The arena is append-only: an added fact is appended even when its
// relation is irrelevant to the query (mirroring Compile, which puts every
// fact in the arena), and a removed fact is tombstoned rather than spliced
// out so that fact indices — and every digit's slots — stay stable. Dead
// facts are stripped from the per-relation evaluation lists and from their
// nulls' slot lists at patch time, so the hot sweep loops never test a
// tombstone.
//
// Patch must not run concurrently with any cursor use, and it invalidates
// all existing cursors of the engine (digit layout and arena size change);
// create fresh cursors after patching.
func (e *Engine) Patch(db *core.Database, d core.Delta) bool {
	ok := e.patchOne(db, d)
	if ok {
		// The bitset plan indexes live-fact ordinals, digit slot lists and
		// the interned value range, all of which a patch can change;
		// recompile it against the patched arena. The precomputed slot
		// hashes depend on the same geometry.
		e.buildBitsets()
		e.buildSlotHashes()
	}
	return ok
}

func (e *Engine) patchOne(db *core.Database, d core.Delta) bool {
	switch d.Op {
	case core.DeltaAddFact:
		return e.patchAddFact(db, d.Fact)
	case core.DeltaRemoveFact:
		return e.patchRemoveFact(db, d.Fact)
	case core.DeltaExtendDomain:
		return e.patchExtendDomain(db, d.Null, d.Added)
	case core.DeltaExtendUniform:
		return e.patchExtendUniform(db, d.Added)
	default:
		// DeltaSetDomain (wholesale replacement) and unknown ops: rebuild.
		return false
	}
}

func (e *Engine) patchAddFact(db *core.Database, f core.Fact) bool {
	rid, known := e.rels.Lookup(f.Rel)
	if !known && e.queryRels != nil && e.queryRels[f.Rel] {
		// The query mentions a relation the database did not have at
		// compile time: its atoms were compiled to statically-unsatisfiable
		// placeholders, which the new fact invalidates.
		return false
	}
	relevant := e.prog.opaque != nil // new relations are relevant only to opaque queries
	if known {
		relevant = e.relevant[rid]
	}
	// Pre-scan the arguments: every rebuild condition must be detected
	// before the engine is mutated.
	for _, n := range f.Nulls() {
		if e.prunedNulls[n] {
			if relevant {
				// Promotion: a pruned null's slots were dropped at compile
				// time, so it cannot become an enumerated digit in place.
				return false
			}
			continue
		}
		if e.digitOf(n) < 0 && db.Domain(n) == nil {
			return false // new null without a domain; recompile surfaces the error
		}
	}

	if !known {
		rid = e.rels.Intern(f.Rel)
		e.relArity = append(e.relArity, int32(len(f.Args)))
		e.relFacts = append(e.relFacts, nil)
		e.relevant = append(e.relevant, relevant)
	}
	fi := int32(len(e.factRel))
	e.factRel = append(e.factRel, rid)
	e.relFacts[rid] = append(e.relFacts[rid], fi)
	e.factIdx[f.Key()] = fi
	for p, a := range f.Args {
		if !a.IsNull() {
			e.tmplArgs = append(e.tmplArgs, e.values.Intern(a.Constant()))
			continue
		}
		e.tmplArgs = append(e.tmplArgs, 0)
		n := a.NullID()
		if e.prunedNulls[n] {
			continue // pruned nulls' slots are dropped, as in Compile
		}
		if k := e.digitOf(n); k >= 0 {
			dg := &e.digits[k]
			dg.slots = append(dg.slots, slot{fact: fi, pos: int32(p)})
			if relevant {
				dg.dirty = true
			}
			continue
		}
		// A null new to the engine: prune it or give it a digit.
		dom := db.Domain(n)
		if e.prune && !relevant {
			e.prunedNulls[n] = true
			continue
		}
		dg := digit{
			null:  n,
			dom:   make([]uint32, len(dom)),
			slots: []slot{{fact: fi, pos: int32(p)}},
			dirty: relevant,
		}
		for i, c := range dom {
			dg.dom[i] = e.values.Intern(c)
		}
		e.insertDigit(dg)
	}
	e.factOff = append(e.factOff, int32(len(e.tmplArgs)))
	if e.dead != nil {
		e.dead = append(e.dead, false)
	}
	e.recomputeSizes(db)
	return true
}

func (e *Engine) patchRemoveFact(db *core.Database, f core.Fact) bool {
	fi, ok := e.factIdx[f.Key()]
	if !ok {
		return false // engine out of sync with the delta stream
	}
	if e.dead == nil {
		e.dead = make([]bool, len(e.factRel))
	}
	e.dead[fi] = true
	delete(e.factIdx, f.Key())

	rid := e.factRel[fi]
	rf := e.relFacts[rid]
	for j, x := range rf {
		if x == fi {
			e.relFacts[rid] = append(rf[:j], rf[j+1:]...)
			break
		}
	}

	for _, n := range f.Nulls() {
		if e.prunedNulls[n] {
			if !db.HasNull(n) {
				delete(e.prunedNulls, n)
			}
			continue
		}
		k := e.digitOf(n)
		if k < 0 {
			continue
		}
		dg := &e.digits[k]
		live := dg.slots[:0]
		for _, s := range dg.slots {
			if s.fact != fi {
				live = append(live, s)
			}
		}
		dg.slots = live
		if !db.HasNull(n) {
			e.digits = append(e.digits[:k], e.digits[k+1:]...)
			continue
		}
		dirty := false
		for _, s := range dg.slots {
			if e.relevant[e.factRel[s.fact]] {
				dirty = true
				break
			}
		}
		if e.prune && !dirty {
			// Demote: the null no longer occurs in any relation the query
			// mentions, so a fresh compile would prune it. Its remaining
			// slots all live in irrelevant relations and are never read.
			e.digits = append(e.digits[:k], e.digits[k+1:]...)
			e.prunedNulls[n] = true
			continue
		}
		dg.dirty = dirty
	}
	e.recomputeSizes(db)
	return true
}

func (e *Engine) patchExtendDomain(db *core.Database, n core.NullID, added []string) bool {
	if k := e.digitOf(n); k >= 0 {
		dg := &e.digits[k]
		// Deltas are applied against the already-final database, so a digit
		// created by an earlier add in the same batch already carries the
		// final domain; skip values it has (extension keeps domain order).
		for _, v := range added {
			if id := e.values.Intern(v); !containsID(dg.dom, id) {
				dg.dom = append(dg.dom, id)
			}
		}
		e.recomputeSizes(db)
	} else if e.prunedNulls[n] {
		e.recomputeSizes(db) // the pruned null's |dom| term grew
	}
	// A null the engine has never seen: nothing to maintain.
	return true
}

func (e *Engine) patchExtendUniform(db *core.Database, added []string) bool {
	for _, v := range added {
		id := e.values.Intern(v)
		for k := range e.digits {
			if dg := &e.digits[k]; !containsID(dg.dom, id) {
				dg.dom = append(dg.dom, id)
			}
		}
	}
	e.recomputeSizes(db)
	return true
}

func containsID(dom []uint32, id uint32) bool {
	for _, d := range dom {
		if d == id {
			return true
		}
	}
	return false
}

// digitOf returns the index of null n's digit, or -1. Digits are kept
// sorted by null ID.
func (e *Engine) digitOf(n core.NullID) int {
	lo, hi := 0, len(e.digits)
	for lo < hi {
		mid := (lo + hi) / 2
		if e.digits[mid].null < n {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(e.digits) && e.digits[lo].null == n {
		return lo
	}
	return -1
}

// insertDigit inserts dg keeping e.digits sorted by null ID.
func (e *Engine) insertDigit(dg digit) {
	lo, hi := 0, len(e.digits)
	for lo < hi {
		mid := (lo + hi) / 2
		if e.digits[mid].null < dg.null {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	e.digits = append(e.digits, digit{})
	copy(e.digits[lo+1:], e.digits[lo:])
	e.digits[lo] = dg
}

// recomputeSizes re-derives size, multiplier, total and the pruned count
// from the current digits and pruned-null set.
func (e *Engine) recomputeSizes(db *core.Database) {
	e.size = big.NewInt(1)
	for i := range e.digits {
		e.size.Mul(e.size, big.NewInt(int64(len(e.digits[i].dom))))
	}
	e.multiplier = big.NewInt(1)
	for n := range e.prunedNulls {
		e.multiplier.Mul(e.multiplier, big.NewInt(int64(len(db.Domain(n)))))
	}
	e.pruned = len(e.prunedNulls)
	e.total = new(big.Int).Mul(e.size, e.multiplier)
}
