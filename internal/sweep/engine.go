// Package sweep implements a compiled valuation-sweep engine: the shared
// substrate under the brute-force counters, the completion enumerator and
// the sampling estimators.
//
// Compiling a database once per sweep interns relations, constants and
// domain values into dense uint32 IDs and flattens the facts into a slotted
// arena in which every null owns the list of (fact, position) slots it
// patches. A Cursor then drives the mixed-radix odometer of the valuation
// space incrementally: advancing digit k patches only null k's slots, keeps
// an order-independent 128-bit hash of the current completion's fact set up
// to date, and re-evaluates the (compiled) query only when a relation the
// query mentions was touched — so one step costs O(slots changed) instead
// of O(|D|), with zero allocations. Queries in the syntactic fragment
// (BCQ, UCQ, inequalities, negations, TRUE) are compiled to run directly
// over the interned arena; opaque cq.Func queries fall back to a full
// re-check on a materialized core.Instance.
//
// For counting valuations the engine additionally applies relevant-null
// pruning: a null occurring only in relations the query never mentions
// cannot influence the verdict, so it is factored out of the enumeration as
// a multiplicative |dom| term. The enumerated space shrinks from the full
// product to the product over relevant nulls; Engine.Multiplier carries the
// factored-out term.
//
// Index order is exactly that of core.ValuationSpace (nulls sorted by ID,
// the largest ID varying fastest, restricted to the enumerated digits), so
// sharded sweeps merge bit-identically to a serial pass.
package sweep

import (
	"math/big"

	"github.com/incompletedb/incompletedb/internal/core"
	"github.com/incompletedb/incompletedb/internal/cq"
)

// Mode selects what a compiled engine is used for.
type Mode int

const (
	// ModeValuations counts/inspects valuations: relevant-null pruning is
	// applied (for syntactic queries), completion hashing is off.
	ModeValuations Mode = iota
	// ModeCompletions deduplicates completions: every null is enumerated
	// and the cursor maintains the incremental 128-bit set hash.
	ModeCompletions
	// ModeSample is random access over the full valuation space (no
	// pruning, no completion hashing): the substrate of the Monte Carlo
	// estimators, which must sample the same distribution — and consume
	// the same RNG stream — as core.ValuationSpace.Sample.
	ModeSample
)

// slot is one argument position patched by a null: args[factOff[fact]+pos].
type slot struct {
	fact int32
	pos  int32
}

// digit is one enumerated null: a mixed-radix digit of the sweep.
type digit struct {
	null  core.NullID
	dom   []uint32 // interned domain constants, in domain order
	slots []slot
	// dirty reports whether advancing this digit can change the query
	// verdict, i.e. whether some slot lives in a relation the query
	// mentions. Clean digits leave the cached verdict valid.
	dirty bool
	// slotHash, in ModeCompletions, holds per slot the fact's
	// precomputed hash at each domain value — filled by buildSlotHashes
	// for slots whose fact contains no other null, nil entries
	// otherwise. Aligned with slots when non-nil.
	slotHash [][]Hash128
}

// Engine is a database compiled for sweeping, safe for concurrent use by
// any number of Cursors. It is read-only except for Patch, which applies a
// database delta in place; Patch must not run concurrently with cursor use,
// and it invalidates every existing cursor.
type Engine struct {
	mode Mode

	values *Interner // constants and domain values
	rels   *Interner // relation names

	relArity []int32
	relFacts [][]int32 // live fact indices grouped per relation ID

	factRel  []uint32
	factOff  []int32  // fact i's args live at [factOff[i], factOff[i+1])
	tmplArgs []uint32 // argument arena template; null positions hold 0

	digits []digit

	prog program

	size       *big.Int // enumerated (relevant) space size
	multiplier *big.Int // product of the pruned nulls' domain sizes
	total      *big.Int // full valuation-space size = size × multiplier
	pruned     int      // number of pruned (irrelevant) nulls

	// Patch support (see patch.go). The arena is append-only: removed facts
	// are tombstoned in dead rather than spliced out, so fact indices — and
	// with them every digit's slots — stay stable.
	factIdx     map[string]int32     // live fact Key → arena index
	relevant    []bool               // per relation ID: query mentions it
	queryRels   map[string]bool      // sig(q) by name; nil when opaque
	prunedNulls map[core.NullID]bool // nulls factored out of the sweep
	prune       bool                 // relevant-null pruning is active
	dead        []bool               // tombstones; nil until first removal

	// Bitset-compiled membership (see bitset.go): the word-parallel atom
	// matching plan, rebuilt after every successful Patch; nil when no
	// atom profits, the budget is exceeded, or bitsets are disabled.
	bits      *bitsetPlan
	bitsetOff bool

	// Atom ordering (see order.go): syntactic pins the query's own atom
	// order, orderNote describes the order the engine evaluates with.
	syntactic bool
	orderNote string
}

// CompileOptions are the escape hatches of CompileWith. The zero value
// is the default compilation: bitset membership when profitable,
// cost-ordered atoms.
type CompileOptions struct {
	// DisableBitsets pins the scalar evaluation path: no bitset
	// membership plan is compiled or rebuilt after patches.
	DisableBitsets bool
	// SyntacticOrder pins the query's own (syntactic) atom order
	// instead of the cost-driven most-bound-first reordering.
	SyntacticOrder bool
}

// Compile builds the sweep engine for db and q under the given mode with
// default options. It returns an error if some null of db lacks a domain.
func Compile(db *core.Database, q cq.Query, mode Mode) (*Engine, error) {
	return CompileWith(db, q, mode, CompileOptions{})
}

// CompileWith is Compile with explicit escape hatches.
func CompileWith(db *core.Database, q cq.Query, mode Mode, opts CompileOptions) (*Engine, error) {
	if err := db.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		mode:        mode,
		values:      NewInterner(),
		rels:        NewInterner(),
		prunedNulls: make(map[core.NullID]bool),
		bitsetOff:   opts.DisableBitsets,
		syntactic:   opts.SyntacticOrder,
	}

	facts := db.Facts()
	nullSlots := make(map[core.NullID][]slot)
	e.factRel = make([]uint32, len(facts))
	e.factOff = make([]int32, len(facts)+1)
	e.factIdx = make(map[string]int32, len(facts))
	for i, f := range facts {
		rid := e.rels.Intern(f.Rel)
		if int(rid) == len(e.relArity) {
			e.relArity = append(e.relArity, int32(len(f.Args)))
			e.relFacts = append(e.relFacts, nil)
		}
		e.factRel[i] = rid
		e.factOff[i] = int32(len(e.tmplArgs))
		e.relFacts[rid] = append(e.relFacts[rid], int32(i))
		e.factIdx[f.Key()] = int32(i)
		for p, a := range f.Args {
			if a.IsNull() {
				e.tmplArgs = append(e.tmplArgs, 0)
				nullSlots[a.NullID()] = append(nullSlots[a.NullID()], slot{fact: int32(i), pos: int32(p)})
			} else {
				e.tmplArgs = append(e.tmplArgs, e.values.Intern(a.Constant()))
			}
		}
	}
	e.factOff[len(facts)] = int32(len(e.tmplArgs))

	e.prog = compileQuery(e, q)
	e.orderAtoms()
	e.queryRels, _ = cq.Signature(q)

	// Per-relation relevance: a relation the query mentions (or every
	// relation, for opaque queries whose signature is unknown).
	e.relevant = make([]bool, e.rels.Len())
	if e.prog.opaque != nil {
		for i := range e.relevant {
			e.relevant[i] = true
		}
	} else {
		for _, d := range e.prog.disjuncts {
			for _, a := range d.atoms {
				// Atoms over relations the database does not have carry a
				// sentinel ID; they have no facts to mark relevant.
				if int(a.rel) < len(e.relevant) {
					e.relevant[a.rel] = true
				}
			}
		}
	}

	e.prune = mode == ModeValuations && e.prog.opaque == nil
	e.size, e.multiplier = big.NewInt(1), big.NewInt(1)
	for _, n := range db.Nulls() {
		dom := db.Domain(n)
		slots := nullSlots[n]
		dirty := false
		for _, s := range slots {
			if e.relevant[e.factRel[s.fact]] {
				dirty = true
				break
			}
		}
		if e.prune && !dirty {
			e.multiplier.Mul(e.multiplier, big.NewInt(int64(len(dom))))
			e.prunedNulls[n] = true
			e.pruned++
			continue
		}
		dg := digit{null: n, dom: make([]uint32, len(dom)), slots: slots, dirty: dirty}
		for i, c := range dom {
			dg.dom[i] = e.values.Intern(c)
		}
		e.digits = append(e.digits, dg)
		e.size.Mul(e.size, big.NewInt(int64(len(dom))))
	}
	e.total = new(big.Int).Mul(e.size, e.multiplier)
	e.buildBitsets()
	e.buildSlotHashes()
	return e, nil
}

// slotHashBudget caps the precomputed per-(slot, domain value) fact
// hashes of a completions engine: 16 B per entry, 4 MiB at the cap.
const slotHashBudget = 1 << 18

// buildSlotHashes precomputes, for every digit slot whose fact contains
// no other null, the fact's hash at each of the digit's domain values:
// completion stepping then replaces the fact rehash (two mixing lanes
// per argument) with a single table load. Facts holding several nulls
// keep hashing live — their hash depends on the other nulls' current
// values. Called at the end of Compile and after every successful Patch;
// beyond the budget the remaining slots simply stay live-hashed.
func (e *Engine) buildSlotHashes() {
	if e.mode != ModeCompletions {
		return
	}
	nullSlots := make([]int32, len(e.factRel))
	for k := range e.digits {
		for _, s := range e.digits[k].slots {
			nullSlots[s.fact]++
		}
	}
	budget := slotHashBudget
	var scratch []uint32
	for k := range e.digits {
		dg := &e.digits[k]
		dg.slotHash = nil
		for si, s := range dg.slots {
			if nullSlots[s.fact] != 1 || budget < len(dg.dom) {
				continue
			}
			budget -= len(dg.dom)
			args := e.factArgs(e.tmplArgs, s.fact)
			scratch = append(scratch[:0], args...)
			hs := make([]Hash128, len(dg.dom))
			for i, v := range dg.dom {
				scratch[s.pos] = v
				hs[i] = factHash(e.factRel[s.fact], scratch)
			}
			if dg.slotHash == nil {
				dg.slotHash = make([][]Hash128, len(dg.slots))
			}
			dg.slotHash[si] = hs
		}
	}
}

// Mode returns the mode the engine was compiled under.
func (e *Engine) Mode() Mode { return e.mode }

// Size returns the number of valuations the sweep enumerates: the full
// valuation-space size, except in ModeValuations where irrelevant nulls
// have been factored out.
func (e *Engine) Size() *big.Int { return new(big.Int).Set(e.size) }

// Multiplier returns the factored-out term ∏ |dom(⊥)| over the pruned
// nulls (1 when nothing was pruned). Each enumerated valuation stands for
// Multiplier() valuations of the full space, all with the same verdict.
func (e *Engine) Multiplier() *big.Int { return new(big.Int).Set(e.multiplier) }

// TotalSize returns the full valuation-space size, Size × Multiplier.
func (e *Engine) TotalSize() *big.Int { return new(big.Int).Set(e.total) }

// Pruned returns how many irrelevant nulls were factored out of the sweep.
func (e *Engine) Pruned() int { return e.pruned }

// Opaque reports whether the query fell outside the compiled fragment and
// is re-checked on a materialized instance at every dirty step.
func (e *Engine) Opaque() bool { return e.prog.opaque != nil }

// NumFacts returns the number of arena entries, including facts tombstoned
// by Patch.
func (e *Engine) NumFacts() int { return len(e.factRel) }

func (e *Engine) factArgs(args []uint32, fi int32) []uint32 {
	return args[e.factOff[fi]:e.factOff[fi+1]]
}
