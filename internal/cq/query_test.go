package cq

import (
	"testing"

	"github.com/incompletedb/incompletedb/internal/core"
)

func inst(facts ...[]string) *core.Instance {
	i := core.NewInstance()
	for _, f := range facts {
		i.Add(f[0], f[1:]...)
	}
	return i
}

func TestParseSimpleBCQ(t *testing.T) {
	q, err := ParseBCQ("R(x, y) ∧ S(x)")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Atoms) != 2 || q.Atoms[0].Rel != "R" || q.Atoms[1].Rel != "S" {
		t.Fatalf("parsed %v", q)
	}
	if got := q.String(); got != "R(x, y) ∧ S(x)" {
		t.Fatalf("String = %q", got)
	}
}

func TestParseSeparators(t *testing.T) {
	for _, s := range []string{
		"R(x,y), S(x)",
		"R(x,y) & S(x)",
		"R(x,y) AND S(x)",
		"R(x,y) ∧ S(x)",
	} {
		q, err := ParseBCQ(s)
		if err != nil {
			t.Fatalf("ParseBCQ(%q): %v", s, err)
		}
		if len(q.Atoms) != 2 {
			t.Fatalf("ParseBCQ(%q): %d atoms", s, len(q.Atoms))
		}
	}
}

func TestParseUnionAndNegation(t *testing.T) {
	q, err := Parse("R(x) | S(y, y)")
	if err != nil {
		t.Fatal(err)
	}
	u, ok := q.(*UCQ)
	if !ok || len(u.Disjuncts) != 2 {
		t.Fatalf("expected UCQ with 2 disjuncts, got %T %v", q, q)
	}
	n, err := Parse("!R(x, y)")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n.(*Negation); !ok {
		t.Fatalf("expected Negation, got %T", n)
	}
	n2, err := Parse("NOT R(x) ∨ S(x)")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n2.(*Negation); !ok {
		t.Fatalf("expected Negation of union, got %T", n2)
	}
	tr, err := Parse("TRUE")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.(Tautology); !ok {
		t.Fatalf("expected Tautology, got %T", tr)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"", "R", "R()", "R(x", "R(x))", "R(x) extra", "R(x,)", "(x)",
		"R(x) ||", "TRUE R(x)", "R(x) ∧",
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestParseBCQRejectsUnionNegationTautology(t *testing.T) {
	for _, s := range []string{"R(x) | S(x)", "!R(x)", "TRUE"} {
		if _, err := ParseBCQ(s); err == nil {
			t.Errorf("ParseBCQ(%q) should fail", s)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (&BCQ{}).Validate(); err == nil {
		t.Error("empty query should not validate")
	}
	if err := (&BCQ{Atoms: []Atom{{Rel: "R"}}}).Validate(); err == nil {
		t.Error("zero-arity atom should not validate")
	}
	q := &BCQ{Atoms: []Atom{
		{Rel: "R", Vars: []string{"x"}},
		{Rel: "R", Vars: []string{"x", "y"}},
	}}
	if err := q.Validate(); err == nil {
		t.Error("arity conflict should not validate")
	}
}

func TestEvalSingleAtom(t *testing.T) {
	q := MustParseBCQ("R(x, x)")
	if q.Eval(inst([]string{"R", "a", "b"})) {
		t.Error("R(x,x) should not hold in {R(a,b)}")
	}
	if !q.Eval(inst([]string{"R", "a", "b"}, []string{"R", "c", "c"})) {
		t.Error("R(x,x) should hold in {R(a,b), R(c,c)}")
	}
}

func TestEvalJoin(t *testing.T) {
	q := MustParseBCQ("R(x) ∧ S(x, y) ∧ T(y)")
	i := inst(
		[]string{"R", "a"},
		[]string{"S", "a", "b"},
		[]string{"T", "c"},
	)
	if q.Eval(i) {
		t.Error("query should not hold: T(b) missing")
	}
	i.Add("T", "b")
	if !q.Eval(i) {
		t.Error("query should hold after adding T(b)")
	}
}

func TestEvalSelfJoin(t *testing.T) {
	q := MustParseBCQ("E(x, y) ∧ E(y, z)")
	i := inst([]string{"E", "a", "b"})
	if q.Eval(i) {
		t.Error("path of length 2 should not exist")
	}
	i.Add("E", "b", "c")
	if !q.Eval(i) {
		t.Error("path a->b->c should satisfy the query")
	}
}

func TestEvalEmptyRelation(t *testing.T) {
	q := MustParseBCQ("R(x) ∧ S(x)")
	if q.Eval(inst([]string{"R", "a"})) {
		t.Error("query should not hold with S empty")
	}
}

func TestEvalMonotone(t *testing.T) {
	// BCQs are monotone: adding facts never falsifies.
	q := MustParseBCQ("R(x, y) ∧ S(y)")
	i := inst([]string{"R", "a", "b"}, []string{"S", "b"})
	if !q.Eval(i) {
		t.Fatal("base instance should satisfy")
	}
	i.Add("R", "z", "w")
	i.Add("S", "q")
	if !q.Eval(i) {
		t.Error("monotonicity violated")
	}
}

func TestUCQEval(t *testing.T) {
	u := MustParse("R(x, x) | S(y)").(*UCQ)
	if !u.Eval(inst([]string{"S", "a"})) {
		t.Error("second disjunct should fire")
	}
	if u.Eval(inst([]string{"R", "a", "b"})) {
		t.Error("no disjunct should fire")
	}
}

func TestNegationEval(t *testing.T) {
	n := MustParse("!R(x)").(*Negation)
	if !n.Eval(core.NewInstance()) {
		t.Error("¬R(x) should hold in the empty instance")
	}
	if n.Eval(inst([]string{"R", "a"})) {
		t.Error("¬R(x) should fail when R is nonempty")
	}
}

func TestTautologyEval(t *testing.T) {
	if !(Tautology{}).Eval(core.NewInstance()) {
		t.Error("TRUE should hold everywhere")
	}
}

func TestFuncQuery(t *testing.T) {
	f := &Func{Name: "even-size", F: func(i *core.Instance) bool { return i.Size()%2 == 0 }}
	if !f.Eval(core.NewInstance()) || f.String() != "even-size" {
		t.Error("Func query wrong")
	}
	if f.Eval(inst([]string{"R", "a"})) {
		t.Error("Func query wrong on odd instance")
	}
}

func TestSelfJoinFree(t *testing.T) {
	if !MustParseBCQ("R(x) ∧ S(x)").SelfJoinFree() {
		t.Error("sjf query misclassified")
	}
	q := &BCQ{Atoms: []Atom{
		{Rel: "R", Vars: []string{"x"}},
		{Rel: "R", Vars: []string{"y"}},
	}}
	if q.SelfJoinFree() {
		t.Error("self-join not detected")
	}
}

func TestVarsRelationsOccurrences(t *testing.T) {
	q := MustParseBCQ("R(x, y, x) ∧ S(z)")
	vars := q.Vars()
	if len(vars) != 3 || vars[0] != "x" || vars[1] != "y" || vars[2] != "z" {
		t.Fatalf("Vars = %v", vars)
	}
	occ := q.VarOccurrences()
	if occ["x"] != 2 || occ["y"] != 1 || occ["z"] != 1 {
		t.Fatalf("VarOccurrences = %v", occ)
	}
	rels := q.Relations()
	if len(rels) != 2 || rels[0] != "R" || rels[1] != "S" {
		t.Fatalf("Relations = %v", rels)
	}
}

func TestCloneIndependent(t *testing.T) {
	q := MustParseBCQ("R(x, y)")
	c := q.Clone()
	c.Atoms[0].Vars[0] = "zzz"
	if q.Atoms[0].Vars[0] != "x" {
		t.Error("Clone shares variable storage")
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []string{
		"R(x, x)",
		"R(x) ∧ S(x)",
		"R(x) ∧ S(x, y) ∧ T(y)",
		"R(x, y) ∧ S(x, y)",
		"R(x) ∨ S(y, y)",
		"¬(R(x, y))",
		"TRUE",
	} {
		q := MustParse(s)
		q2 := MustParse(q.String())
		if q2.String() != q.String() {
			t.Errorf("round trip %q -> %q -> %q", s, q.String(), q2.String())
		}
	}
}
