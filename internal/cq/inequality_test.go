package cq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseInequality(t *testing.T) {
	q, err := Parse("R(x, y) ∧ x ≠ y")
	if err != nil {
		t.Fatal(err)
	}
	nq, ok := q.(*BCQNeq)
	if !ok {
		t.Fatalf("expected BCQNeq, got %T", q)
	}
	if len(nq.Base.Atoms) != 1 || len(nq.Diffs) != 1 {
		t.Fatalf("parsed %v", nq)
	}
	// ASCII form.
	q2, err := Parse("R(x, y), x != y")
	if err != nil {
		t.Fatal(err)
	}
	if q2.String() != q.String() {
		t.Fatalf("ASCII and unicode forms differ: %q vs %q", q2.String(), q.String())
	}
	// Round trip.
	q3, err := Parse(q.String())
	if err != nil || q3.String() != q.String() {
		t.Fatalf("round trip failed: %v %v", q3, err)
	}
}

func TestParseInequalityErrors(t *testing.T) {
	for _, s := range []string{
		"x ≠ y",               // no atoms: unsafe
		"R(x) ∧ x ≠ y",        // y unsafe
		"R(x) ∧ x ≠ x",        // unsatisfiable inequality
		"R(x) | S(y) ∧ x ≠ y", // inequality in a union
		"R(x, y) ∧ x ≠",       // missing rhs
		"R(x, y) ∧ x !",       // bad token: '!' only allowed as '!='
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestInequalityEval(t *testing.T) {
	q := MustParse("R(x, y) ∧ x ≠ y").(*BCQNeq)
	if q.Eval(inst([]string{"R", "a", "a"})) {
		t.Error("R(a,a) should not satisfy x ≠ y")
	}
	if !q.Eval(inst([]string{"R", "a", "a"}, []string{"R", "a", "b"})) {
		t.Error("R(a,b) should satisfy x ≠ y")
	}
}

func TestInequalityEvalJoin(t *testing.T) {
	// Two distinct elements of R: needs |R| ≥ 2.
	q := MustParse("R(x) ∧ R'(y) ∧ x ≠ y")
	i := inst([]string{"R", "a"}, []string{"R'", "a"})
	if q.Eval(i) {
		t.Error("single shared element should fail")
	}
	i.Add("R'", "b")
	if !q.Eval(i) {
		t.Error("two distinct elements should succeed")
	}
}

// TestInequalityRefinesBCQ: dropping the inequalities can only make the
// query easier to satisfy.
func TestInequalityRefinesBCQ(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomSJFQuery(r)
		vars := q.Vars()
		if len(vars) < 2 {
			return true
		}
		nq := &BCQNeq{Base: q, Diffs: [][2]string{{vars[0], vars[1]}}}
		// Random small instance.
		i := inst()
		universe := []string{"a", "b", "c"}
		for _, a := range q.Atoms {
			for k := 0; k < 1+r.Intn(3); k++ {
				t := make([]string, len(a.Vars))
				for p := range t {
					t[p] = universe[r.Intn(len(universe))]
				}
				i.Add(a.Rel, t...)
			}
		}
		if nq.Eval(i) && !q.Eval(i) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBCQNeqValidate(t *testing.T) {
	base := MustParseBCQ("R(x, y)")
	good := &BCQNeq{Base: base, Diffs: [][2]string{{"x", "y"}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &BCQNeq{Base: base, Diffs: [][2]string{{"x", "z"}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("unsafe inequality accepted")
	}
}

// TestParserNeverPanics feeds adversarial inputs to the parser; it must
// return errors, not panic.
func TestParserNeverPanics(t *testing.T) {
	inputs := []string{
		"", " ", "(", ")", "¬", "!", "!!", "≠", "x≠", "≠x", "R((", "R()", "R(x",
		"R(x))", "R(x),", ",R(x)", "R(x) ∧ ∧ S(y)", "R(x) || S(y)", "|",
		"TRUE(", "NOT", "NOT NOT R(x)", "R(x) != S(y)", "R (x)", "R(x y)",
		"ＲR(x)", "R(x)∧", "!(R(x)", "!(R(x)))",
	}
	for _, s := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("Parse(%q) panicked: %v", s, r)
				}
			}()
			Parse(s) // error or success, but no panic
		}()
	}
}

// TestParserFuzzRandomBytes drives the parser with random byte strings.
func TestParserFuzzRandomBytes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(40)
		buf := make([]byte, n)
		alphabet := "RSTxyz(),∧!≠=| \tAND"
		for i := range buf {
			buf[i] = alphabet[r.Intn(len(alphabet))]
		}
		defer func() {
			if rec := recover(); rec != nil {
				t.Errorf("Parse(%q) panicked: %v", string(buf), rec)
			}
		}()
		Parse(string(buf))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
