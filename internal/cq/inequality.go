package cq

import (
	"fmt"
	"strings"

	"github.com/incompletedb/incompletedb/internal/core"
)

// BCQNeq is a Boolean conjunctive query extended with inequality atoms
// x ≠ y — the language of footnote 4 of the paper, which notes that
// counting valuations for unions of BCQs with inequalities still admits an
// FPRAS (they remain monotone with bounded minimal models and cheap model
// checking). This implementation supports exact counting via the generic
// (brute-force) counters and Monte Carlo estimation; the Karp–Luby
// estimator requires product-form cylinders and does not apply.
type BCQNeq struct {
	Base *BCQ
	// Diffs lists pairs of variables whose images must differ.
	Diffs [][2]string
}

// String renders the query as "R(x, y) ∧ x ≠ y".
func (q *BCQNeq) String() string {
	parts := []string{}
	for _, a := range q.Base.Atoms {
		parts = append(parts, a.String())
	}
	for _, d := range q.Diffs {
		parts = append(parts, d[0]+" ≠ "+d[1])
	}
	return strings.Join(parts, " ∧ ")
}

// Validate checks the base query and that every inequality variable occurs
// in some relational atom (safety).
func (q *BCQNeq) Validate() error {
	if err := q.Base.Validate(); err != nil {
		return err
	}
	occ := q.Base.VarOccurrences()
	for _, d := range q.Diffs {
		for _, v := range d {
			if occ[v] == 0 {
				return fmt.Errorf("cq: inequality variable %s does not occur in any atom", v)
			}
		}
		if d[0] == d[1] {
			return fmt.Errorf("cq: inequality %s ≠ %s is unsatisfiable", d[0], d[1])
		}
	}
	return nil
}

// Eval reports whether inst satisfies the query: a homomorphism of the base
// query whose variable images respect every inequality.
func (q *BCQNeq) Eval(inst *core.Instance) bool {
	asg := make(map[string]string, 8)
	diffsOK := func() bool {
		for _, d := range q.Diffs {
			a, okA := asg[d[0]]
			b, okB := asg[d[1]]
			if okA && okB && a == b {
				return false
			}
		}
		return true
	}
	atoms := q.Base.Atoms
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(atoms) {
			return diffsOK()
		}
		a := atoms[i]
		for _, t := range inst.Tuples(a.Rel) {
			if len(t) != len(a.Vars) {
				continue
			}
			var bound []string
			ok := true
			for p, v := range a.Vars {
				if cur, has := asg[v]; has {
					if cur != t[p] {
						ok = false
						break
					}
				} else {
					asg[v] = t[p]
					bound = append(bound, v)
				}
			}
			if ok && diffsOK() && rec(i+1) {
				return true
			}
			for _, v := range bound {
				delete(asg, v)
			}
		}
		return false
	}
	return rec(0)
}
