package cq

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses a Boolean query. Grammar (whitespace-insensitive):
//
//	query    := "TRUE" | negation | union
//	negation := ("!" | "¬" | "NOT") union
//	union    := conj { ("|" | "∨" | "OR") conj }
//	conj     := atom { ("," | "∧" | "&" | "AND") atom }
//	atom     := ident "(" ident { "," ident } ")"
//
// A single conjunction parses to *BCQ, a union of two or more to *UCQ, and a
// negation to *Negation. Examples: "R(x, x)", "R(x) ∧ S(x,y) ∧ T(y)",
// "R(x) | S(y,y)", "!R(x,y)".
func Parse(s string) (Query, error) {
	p := &parser{src: s}
	p.skipSpace()
	if p.eatWord("TRUE") {
		p.skipSpace()
		if !p.done() {
			return nil, p.errf("trailing input after TRUE")
		}
		return Tautology{}, nil
	}
	neg := false
	if p.eat('!') || p.eat('¬') || p.eatWord("NOT") {
		neg = true
	}
	// An optional grouping parenthesis may follow a negation, as produced by
	// Negation.String(); atoms never start with '(' so this is unambiguous.
	grouped := neg && p.eat('(')
	u, diffs, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	if grouped && !p.eat(')') {
		return nil, p.errf("expected ')' closing negation group")
	}
	p.skipSpace()
	if !p.done() {
		return nil, p.errf("trailing input")
	}
	var q Query
	switch {
	case len(diffs) > 0:
		nq := &BCQNeq{Base: u.Disjuncts[0], Diffs: diffs}
		if err := nq.Validate(); err != nil {
			return nil, err
		}
		q = nq
	case len(u.Disjuncts) == 1:
		q = u.Disjuncts[0]
	default:
		q = u
	}
	if neg {
		q = &Negation{Inner: q}
	}
	return q, nil
}

// ParseBCQ parses a Boolean conjunctive query (no union, no negation).
func ParseBCQ(s string) (*BCQ, error) {
	q, err := Parse(s)
	if err != nil {
		return nil, err
	}
	b, ok := q.(*BCQ)
	if !ok {
		return nil, fmt.Errorf("cq: %q is not a conjunctive query", s)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// MustParseBCQ is ParseBCQ that panics on error; intended for tests and
// package-level pattern constants.
func MustParseBCQ(s string) *BCQ {
	q, err := ParseBCQ(s)
	if err != nil {
		panic(err)
	}
	return q
}

// MustParse is Parse that panics on error.
func MustParse(s string) Query {
	q, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("cq: parse error at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) done() bool { return p.pos >= len(p.src) }

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) eat(r rune) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], string(r)) {
		p.pos += len(string(r))
		return true
	}
	return false
}

func (p *parser) eatWord(w string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], w) {
		rest := p.src[p.pos+len(w):]
		if rest == "" || !isIdentChar(rune(rest[0])) {
			p.pos += len(w)
			return true
		}
	}
	return false
}

func isIdentChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '\''
}

func (p *parser) parseIdent() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isIdentChar(rune(p.src[p.pos])) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected identifier")
	}
	return p.src[start:p.pos], nil
}

// eatNeq consumes an inequality token ("≠" or "!=").
func (p *parser) eatNeq() bool {
	if p.eat('≠') {
		return true
	}
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], "!=") {
		p.pos += 2
		return true
	}
	return false
}

func (p *parser) parseAtom() (Atom, error) {
	rel, err := p.parseIdent()
	if err != nil {
		return Atom{}, err
	}
	return p.parseAtomTail(rel)
}

func (p *parser) parseAtomTail(rel string) (Atom, error) {
	if !p.eat('(') {
		return Atom{}, p.errf("expected '(' after relation %s", rel)
	}
	var vars []string
	for {
		v, err := p.parseIdent()
		if err != nil {
			return Atom{}, err
		}
		vars = append(vars, v)
		if p.eat(',') {
			continue
		}
		break
	}
	if !p.eat(')') {
		return Atom{}, p.errf("expected ')' in atom over %s", rel)
	}
	return Atom{Rel: rel, Vars: vars}, nil
}

// parseConj parses a conjunction of relational atoms and inequality terms
// "x ≠ y" / "x != y".
func (p *parser) parseConj() (*BCQ, [][2]string, error) {
	var atoms []Atom
	var diffs [][2]string
	for {
		ident, err := p.parseIdent()
		if err != nil {
			return nil, nil, err
		}
		if p.eatNeq() {
			rhs, err := p.parseIdent()
			if err != nil {
				return nil, nil, err
			}
			diffs = append(diffs, [2]string{ident, rhs})
		} else {
			a, err := p.parseAtomTail(ident)
			if err != nil {
				return nil, nil, err
			}
			atoms = append(atoms, a)
		}
		if p.eat(',') || p.eat('∧') || p.eat('&') || p.eatWord("AND") {
			continue
		}
		break
	}
	return &BCQ{Atoms: atoms}, diffs, nil
}

func (p *parser) parseUnion() (*UCQ, [][2]string, error) {
	var disjuncts []*BCQ
	var diffs [][2]string
	for {
		c, d, err := p.parseConj()
		if err != nil {
			return nil, nil, err
		}
		disjuncts = append(disjuncts, c)
		diffs = append(diffs, d...)
		if p.eat('|') || p.eat('∨') || p.eatWord("OR") {
			continue
		}
		break
	}
	if len(diffs) > 0 && len(disjuncts) > 1 {
		return nil, nil, p.errf("inequalities are only supported in a single conjunctive query")
	}
	return &UCQ{Disjuncts: disjuncts}, diffs, nil
}
