package cq

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsPatternOfExample32(t *testing.T) {
	// Example 3.2 of the paper: q' = R'(u,u,y) ∧ S'(z) is a pattern of
	// q = R(u,x,u) ∧ S'(y,y) ∧ T(x,s,z,s).
	q := MustParseBCQ("R(u, x, u) ∧ S'(y, y) ∧ T(x, s, z, s)")
	p := MustParseBCQ("R'(u, u, y) ∧ S'(z)")
	if !IsPatternOf(p, q) {
		t.Fatal("Example 3.2 pattern not recognized")
	}
}

func TestIsPatternOfBasics(t *testing.T) {
	cases := []struct {
		p, q string
		want bool
	}{
		{"R(x)", "S(y, z)", true},                          // always a pattern
		{"R(x, x)", "S(u, v, u)", true},                    // repeated var
		{"R(x, x)", "S(u, v)", false},                      // no repeat
		{"R(x, y)", "S(u, v, u)", true},                    // two distinct vars
		{"R(x, y)", "S(u, u)", false},                      // renaming is consistent
		{"R(x), S(x)", "A(u, v), B(v, w)", true},           // shared var v
		{"R(x), S(x)", "A(u), B(v)", false},                // nothing shared
		{"R(x), S(x)", "A(u, u)", false},                   // needs two atoms
		{"R(x), S(x,y), T(y)", "A(x), B(x,y), C(y)", true}, // path itself
		{"R(x), S(x,y), T(y)", "A(x,y), B(y,z), C(z,w)", true},
		{"R(x), S(x,y), T(y)", "A(x,y), B(x,y)", false}, // only two atoms
		{"R(x,y), S(x,y)", "A(u,v,w), B(v,w)", true},
		{"R(x,y), S(x,y)", "A(u,v), B(v,w)", false}, // only one shared var
		{"R(x,y), S(x,y)", "A(u,u), B(u,u)", false}, // x,y must stay distinct
		{"R(x), S(x)", "A(u, v, u)", false},         // one atom only
		{"R(x, y)", "R(x, y) ∧ S(z)", true},
		{"R(x), S(x), T(x)", "A(u), B(u)", false}, // more atoms than q
	}
	for _, c := range cases {
		p, q := MustParseBCQ(c.p), MustParseBCQ(c.q)
		if got := IsPatternOf(p, q); got != c.want {
			t.Errorf("IsPatternOf(%q, %q) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestIsPatternOfReflexiveOnCanonicalPatterns(t *testing.T) {
	pats := []*BCQ{PatternRxx, PatternRxSx, PatternPath, PatternRxySxy, PatternRxy, PatternRx}
	for _, p := range pats {
		if !IsPatternOf(p, p) {
			t.Errorf("pattern %v not a pattern of itself", p)
		}
	}
}

func TestPatternHierarchy(t *testing.T) {
	// Known implications between the canonical patterns.
	// Path contains R(x)∧S(x); R(x,y)∧S(x,y) contains R(x,y) and R(x)∧S(x).
	if !IsPatternOf(PatternRxSx, PatternPath) {
		t.Error("R(x)∧S(x) should be a pattern of the path")
	}
	if !IsPatternOf(PatternRxy, PatternPath) {
		t.Error("R(x,y) should be a pattern of the path")
	}
	if !IsPatternOf(PatternRxy, PatternRxySxy) {
		t.Error("R(x,y) should be a pattern of R(x,y)∧S(x,y)")
	}
	if !IsPatternOf(PatternRxSx, PatternRxySxy) {
		t.Error("R(x)∧S(x) should be a pattern of R(x,y)∧S(x,y)")
	}
	if IsPatternOf(PatternRxx, PatternRxy) || IsPatternOf(PatternRxy, PatternRxx) {
		t.Error("R(x,x) and R(x,y) are incomparable")
	}
}

// randomSJFQuery generates a random self-join-free query with up to 4 atoms,
// arity up to 3, over a pool of 4 variables.
func randomSJFQuery(r *rand.Rand) *BCQ {
	nAtoms := 1 + r.Intn(4)
	pool := []string{"x", "y", "z", "w"}
	var atoms []Atom
	for i := 0; i < nAtoms; i++ {
		arity := 1 + r.Intn(3)
		vars := make([]string, arity)
		for j := range vars {
			vars[j] = pool[r.Intn(len(pool))]
		}
		atoms = append(atoms, Atom{Rel: fmt.Sprintf("R%d", i), Vars: vars})
	}
	return &BCQ{Atoms: atoms}
}

// TestPredicatesMatchIsPatternOf cross-validates the fast structural
// predicates against the generic pattern decision procedure on random
// queries.
func TestPredicatesMatchIsPatternOf(t *testing.T) {
	checks := []struct {
		name string
		pat  *BCQ
		pred func(*BCQ) bool
	}{
		{"R(x,x)", PatternRxx, HasRepeatedVarAtom},
		{"R(x)∧S(x)", PatternRxSx, HasSharedVarAtoms},
		{"path", PatternPath, HasPathPattern},
		{"R(x,y)∧S(x,y)", PatternRxySxy, HasDoublySharedPair},
		{"R(x,y)", PatternRxy, HasBinaryPattern},
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomSJFQuery(r)
		for _, c := range checks {
			if c.pred(q) != IsPatternOf(c.pat, q) {
				t.Logf("disagreement on %v for pattern %s: pred=%v generic=%v",
					q, c.name, c.pred(q), IsPatternOf(c.pat, q))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestPatternTransitive checks transitivity of the pattern relation on
// random triples where the intermediate holds.
func TestPatternTransitive(t *testing.T) {
	pats := []*BCQ{PatternRx, PatternRxx, PatternRxSx, PatternPath, PatternRxySxy, PatternRxy}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomSJFQuery(r)
		for _, a := range pats {
			for _, b := range pats {
				if IsPatternOf(a, b) && IsPatternOf(b, q) && !IsPatternOf(a, q) {
					t.Logf("transitivity violated: %v ⊑ %v ⊑ %v", a, b, q)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHelperCharacterizations(t *testing.T) {
	// AllVariablesOccurOnce <=> neither R(x,x) nor R(x)∧S(x) is a pattern.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomSJFQuery(r)
		lhs := AllVariablesOccurOnce(q)
		rhs := !IsPatternOf(PatternRxx, q) && !IsPatternOf(PatternRxSx, q)
		if lhs != rhs {
			t.Logf("AllVariablesOccurOnce mismatch on %v", q)
			return false
		}
		// AllAtomsUnary <=> neither R(x,x) nor R(x,y) is a pattern.
		lhs2 := AllAtomsUnary(q)
		rhs2 := !IsPatternOf(PatternRxx, q) && !IsPatternOf(PatternRxy, q)
		if lhs2 != rhs2 {
			t.Logf("AllAtomsUnary mismatch on %v", q)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestNoTwoAtomsShareAVariable(t *testing.T) {
	if !NoTwoAtomsShareAVariable(MustParseBCQ("R(x, x) ∧ S(y)")) {
		t.Error("R(x,x) ∧ S(y) has no shared variable across atoms")
	}
	if NoTwoAtomsShareAVariable(MustParseBCQ("R(x) ∧ S(x)")) {
		t.Error("R(x) ∧ S(x) shares x")
	}
}
