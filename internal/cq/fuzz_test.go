package cq

import "testing"

// FuzzParseQuery asserts the parse→render→parse round trip: any string
// the parser accepts must render (Query.String) to a string the parser
// accepts again, and that rendering must be a fixpoint. This pins the
// parser and the renderers to one grammar — the property the canonical
// query forms of internal/fingerprint and the serve API's echoed queries
// rely on.
func FuzzParseQuery(f *testing.F) {
	for _, seed := range []string{
		"TRUE",
		"R(x)",
		"R(x, x)",
		"R(x, y) ∧ S(y)",
		"R(x,y), S(y), T(x,z)",
		"R(x) & S(x) AND T(x)",
		"A(x) | B(y, y)",
		"A(x) ∨ B(y) OR C(z)",
		"!R(x, y)",
		"¬(R(x) ∨ S(y))",
		"NOT R(x, x)",
		"R(x, y) ∧ x ≠ y",
		"R(x, y), x != y, S(y)",
		"!(R(x, y) ∧ x ≠ y)",
		"R(x , y )∧S( y)",
		"R'(x_1, x_2)",
		"R((",
		"R(x) ∧",
		"x ≠ y",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // invalid inputs are fine; they just must not panic
		}
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("Parse(%q) ok but rendering %q does not re-parse: %v", src, rendered, err)
		}
		if again := q2.String(); again != rendered {
			t.Fatalf("rendering is not a fixpoint: %q → %q → %q", src, rendered, again)
		}
	})
}
