package cq

// This file implements the pattern relation of Definition 3.1: an sjfBCQ q'
// is a pattern of an sjfBCQ q if q' can be obtained from q by any sequence of
// atom deletions, variable-occurrence deletions (keeping at least one
// variable per atom), relation renamings to fresh symbols, variable renamings
// to fresh variables, and reorderings of the variables within an atom.
//
// Equivalently (and this is what IsPatternOf decides): there are an injective
// map μ from the atoms of q' to the atoms of q and an injective map ρ from
// the variables of q' to the variables of q such that, for every atom A' of
// q', the multiset of ρ-images of the variable occurrences of A' is contained
// in the multiset of variable occurrences of μ(A').
//
// The canonical patterns driving the paper's dichotomies (Table 1) are
// provided as package variables together with fast structural predicates;
// the predicates are cross-validated against IsPatternOf in the tests.

// Canonical hard patterns of Table 1.
var (
	// PatternRxx is R(x,x): an atom with a repeated variable.
	PatternRxx = MustParseBCQ("R(x, x)")
	// PatternRxSx is R(x) ∧ S(x): two atoms sharing a variable.
	PatternRxSx = MustParseBCQ("R(x) ∧ S(x)")
	// PatternPath is R(x) ∧ S(x,y) ∧ T(y).
	PatternPath = MustParseBCQ("R(x) ∧ S(x, y) ∧ T(y)")
	// PatternRxySxy is R(x,y) ∧ S(x,y): two atoms sharing two variables.
	PatternRxySxy = MustParseBCQ("R(x, y) ∧ S(x, y)")
	// PatternRxy is R(x,y): an atom with two distinct variables.
	PatternRxy = MustParseBCQ("R(x, y)")
	// PatternRx is R(x); it is a pattern of every sjfBCQ.
	PatternRx = MustParseBCQ("R(x)")
)

// IsPatternOf reports whether p is a pattern of q in the sense of
// Definition 3.1. Both queries are expected to be self-join-free; the
// decision is exact for that fragment.
func IsPatternOf(p, q *BCQ) bool {
	if len(p.Atoms) > len(q.Atoms) {
		return false
	}
	usedAtom := make([]bool, len(q.Atoms))
	varMap := make(map[string]string) // p-var -> q-var
	invMap := make(map[string]bool)   // q-vars already used (injectivity)

	// matchVars tries to extend varMap so that the multiset of images of
	// pVars fits inside qCounts. pVars is the list of distinct variables of
	// the p-atom; need[v] is the required multiplicity.
	var matchVars func(pVars []string, idx int, need map[string]int, qCounts map[string]int, cont func() bool) bool
	matchVars = func(pVars []string, idx int, need map[string]int, qCounts map[string]int, cont func() bool) bool {
		if idx == len(pVars) {
			return cont()
		}
		v := pVars[idx]
		if img, ok := varMap[v]; ok {
			if qCounts[img] < need[v] {
				return false
			}
			qCounts[img] -= need[v]
			if matchVars(pVars, idx+1, need, qCounts, cont) {
				return true
			}
			qCounts[img] += need[v]
			return false
		}
		for qv, cnt := range qCounts {
			if invMap[qv] || cnt < need[v] {
				continue
			}
			varMap[v] = qv
			invMap[qv] = true
			qCounts[qv] -= need[v]
			if matchVars(pVars, idx+1, need, qCounts, cont) {
				return true
			}
			qCounts[qv] += need[v]
			delete(varMap, v)
			delete(invMap, qv)
		}
		return false
	}

	var matchAtoms func(i int) bool
	matchAtoms = func(i int) bool {
		if i == len(p.Atoms) {
			return true
		}
		pa := p.Atoms[i]
		need := pa.VarCounts()
		pVars := pa.DistinctVars()
		for j := range q.Atoms {
			if usedAtom[j] {
				continue
			}
			qa := q.Atoms[j]
			if len(pa.Vars) > len(qa.Vars) {
				continue
			}
			usedAtom[j] = true
			qCounts := qa.VarCounts()
			if matchVars(pVars, 0, need, qCounts, func() bool { return matchAtoms(i + 1) }) {
				return true
			}
			usedAtom[j] = false
		}
		return false
	}
	return matchAtoms(0)
}

// HasRepeatedVarAtom reports whether q has R(x,x) as a pattern: some atom
// contains a repeated variable.
func HasRepeatedVarAtom(q *BCQ) bool {
	for _, a := range q.Atoms {
		for _, c := range a.VarCounts() {
			if c >= 2 {
				return true
			}
		}
	}
	return false
}

// HasSharedVarAtoms reports whether q has R(x) ∧ S(x) as a pattern: two
// distinct atoms share a variable.
func HasSharedVarAtoms(q *BCQ) bool {
	for i := range q.Atoms {
		vi := q.Atoms[i].VarCounts()
		for j := i + 1; j < len(q.Atoms); j++ {
			for _, v := range q.Atoms[j].Vars {
				if vi[v] > 0 {
					return true
				}
			}
		}
	}
	return false
}

// HasPathPattern reports whether q has R(x) ∧ S(x,y) ∧ T(y) as a pattern:
// three pairwise distinct atoms A, B, C and distinct variables x, y with
// x ∈ vars(A) ∩ vars(B) and y ∈ vars(B) ∩ vars(C).
func HasPathPattern(q *BCQ) bool {
	n := len(q.Atoms)
	if n < 3 {
		return false
	}
	counts := make([]map[string]int, n)
	for i, a := range q.Atoms {
		counts[i] = a.VarCounts()
	}
	for b := 0; b < n; b++ {
		bVars := q.Atoms[b].DistinctVars()
		for _, x := range bVars {
			for _, y := range bVars {
				if x == y {
					continue
				}
				for a := 0; a < n; a++ {
					if a == b || counts[a][x] == 0 {
						continue
					}
					for c := 0; c < n; c++ {
						if c == b || c == a || counts[c][y] == 0 {
							continue
						}
						return true
					}
				}
			}
		}
	}
	return false
}

// HasDoublySharedPair reports whether q has R(x,y) ∧ S(x,y) as a pattern:
// two distinct atoms share two distinct variables.
func HasDoublySharedPair(q *BCQ) bool {
	for i := range q.Atoms {
		ci := q.Atoms[i].VarCounts()
		for j := i + 1; j < len(q.Atoms); j++ {
			shared := 0
			for _, v := range q.Atoms[j].DistinctVars() {
				if ci[v] > 0 {
					shared++
					if shared >= 2 {
						return true
					}
				}
			}
		}
	}
	return false
}

// HasBinaryPattern reports whether q has R(x,y) as a pattern: some atom
// contains two distinct variables.
func HasBinaryPattern(q *BCQ) bool {
	for _, a := range q.Atoms {
		if len(a.DistinctVars()) >= 2 {
			return true
		}
	}
	return false
}

// AllVariablesOccurOnce reports whether every variable of q has exactly one
// occurrence, which by Theorem 3.6 characterizes (for sjfBCQs) the absence of
// both R(x,x) and R(x) ∧ S(x) as patterns.
func AllVariablesOccurOnce(q *BCQ) bool {
	for _, c := range q.VarOccurrences() {
		if c != 1 {
			return false
		}
	}
	return true
}

// AllAtomsUnary reports whether every atom of q has arity one, which for
// sjfBCQs characterizes the absence of both R(x,x) and R(x,y) as patterns
// (Theorem 4.6's tractable side).
func AllAtomsUnary(q *BCQ) bool {
	for _, a := range q.Atoms {
		if len(a.Vars) != 1 {
			return false
		}
	}
	return true
}

// NoTwoAtomsShareAVariable reports whether no two atoms of q share a
// variable, i.e. q lacks the R(x) ∧ S(x) pattern (Theorem 3.7's tractable
// side for Codd tables).
func NoTwoAtomsShareAVariable(q *BCQ) bool { return !HasSharedVarAtoms(q) }
