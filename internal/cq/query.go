// Package cq implements Boolean queries over relational databases: Boolean
// conjunctive queries (BCQs), self-join-free BCQs (sjfBCQs), unions of BCQs,
// and negations, together with homomorphism-based model checking and the
// pattern relation of Definition 3.1 of Arenas, Barceló and Monet, "Counting
// Problems over Incomplete Databases" (PODS 2020).
package cq

import (
	"fmt"
	"sort"
	"strings"

	"github.com/incompletedb/incompletedb/internal/core"
)

// Query is a Boolean query: a database either satisfies it or not.
type Query interface {
	// Eval reports whether the complete database satisfies the query.
	Eval(*core.Instance) bool
	// String renders the query in the syntax accepted by Parse.
	String() string
}

// Atom is a relational atom R(x1, ..., xk) whose arguments are variables
// (as in the paper, query atoms contain only variables).
type Atom struct {
	Rel  string
	Vars []string
}

// String renders the atom as "R(x, y)".
func (a Atom) String() string {
	return a.Rel + "(" + strings.Join(a.Vars, ", ") + ")"
}

// DistinctVars returns the distinct variables of the atom in order of first
// occurrence.
func (a Atom) DistinctVars() []string {
	seen := make(map[string]bool, len(a.Vars))
	var out []string
	for _, v := range a.Vars {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// VarCounts returns the number of occurrences of each variable in the atom.
func (a Atom) VarCounts() map[string]int {
	m := make(map[string]int, len(a.Vars))
	for _, v := range a.Vars {
		m[v]++
	}
	return m
}

// BCQ is a Boolean conjunctive query: an existentially quantified
// conjunction of atoms. Quantifiers are implicit (all variables are
// existentially quantified).
type BCQ struct {
	Atoms []Atom
}

// NewBCQ builds a BCQ from atoms.
func NewBCQ(atoms ...Atom) *BCQ { return &BCQ{Atoms: atoms} }

// String renders the query as "R(x, y) ∧ S(x)".
func (q *BCQ) String() string {
	parts := make([]string, len(q.Atoms))
	for i, a := range q.Atoms {
		parts[i] = a.String()
	}
	return strings.Join(parts, " ∧ ")
}

// Vars returns the distinct variables of the query, sorted.
func (q *BCQ) Vars() []string {
	seen := make(map[string]bool)
	var out []string
	for _, a := range q.Atoms {
		for _, v := range a.Vars {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Strings(out)
	return out
}

// VarOccurrences returns, for each variable, its total number of occurrences
// across all atoms.
func (q *BCQ) VarOccurrences() map[string]int {
	m := make(map[string]int)
	for _, a := range q.Atoms {
		for _, v := range a.Vars {
			m[v]++
		}
	}
	return m
}

// Relations returns the distinct relation names of the query (sig(q)),
// sorted.
func (q *BCQ) Relations() []string {
	seen := make(map[string]bool)
	var out []string
	for _, a := range q.Atoms {
		if !seen[a.Rel] {
			seen[a.Rel] = true
			out = append(out, a.Rel)
		}
	}
	sort.Strings(out)
	return out
}

// SelfJoinFree reports whether no two atoms use the same relation symbol.
func (q *BCQ) SelfJoinFree() bool {
	seen := make(map[string]bool)
	for _, a := range q.Atoms {
		if seen[a.Rel] {
			return false
		}
		seen[a.Rel] = true
	}
	return true
}

// Validate checks the well-formedness requirements the paper places on
// (sjf)BCQs: at least one atom, every atom of arity at least one, and each
// relation used with a single arity.
func (q *BCQ) Validate() error {
	if len(q.Atoms) == 0 {
		return fmt.Errorf("cq: query has no atoms")
	}
	arity := make(map[string]int)
	for _, a := range q.Atoms {
		if len(a.Vars) == 0 {
			return fmt.Errorf("cq: atom over %s has arity zero", a.Rel)
		}
		if prev, ok := arity[a.Rel]; ok && prev != len(a.Vars) {
			return fmt.Errorf("cq: relation %s used with arities %d and %d", a.Rel, prev, len(a.Vars))
		}
		arity[a.Rel] = len(a.Vars)
	}
	return nil
}

// Clone returns a deep copy of the query.
func (q *BCQ) Clone() *BCQ {
	atoms := make([]Atom, len(q.Atoms))
	for i, a := range q.Atoms {
		atoms[i] = Atom{Rel: a.Rel, Vars: append([]string(nil), a.Vars...)}
	}
	return &BCQ{Atoms: atoms}
}

// Eval reports whether inst satisfies the query, i.e. whether there is a
// homomorphism from the query to inst. It uses backtracking over atoms.
func (q *BCQ) Eval(inst *core.Instance) bool {
	asg := make(map[string]string, 8)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(q.Atoms) {
			return true
		}
		a := q.Atoms[i]
		for _, t := range inst.Tuples(a.Rel) {
			if len(t) != len(a.Vars) {
				continue
			}
			var bound []string
			ok := true
			for p, v := range a.Vars {
				if cur, has := asg[v]; has {
					if cur != t[p] {
						ok = false
						break
					}
				} else {
					asg[v] = t[p]
					bound = append(bound, v)
				}
			}
			if ok && rec(i+1) {
				return true
			}
			for _, v := range bound {
				delete(asg, v)
			}
		}
		return false
	}
	return rec(0)
}

// UCQ is a union (disjunction) of Boolean conjunctive queries.
type UCQ struct {
	Disjuncts []*BCQ
}

// String renders the union as "R(x) ∨ S(y, y)".
func (u *UCQ) String() string {
	parts := make([]string, len(u.Disjuncts))
	for i, d := range u.Disjuncts {
		parts[i] = d.String()
	}
	return strings.Join(parts, " ∨ ")
}

// Eval reports whether some disjunct is satisfied.
func (u *UCQ) Eval(inst *core.Instance) bool {
	for _, d := range u.Disjuncts {
		if d.Eval(inst) {
			return true
		}
	}
	return false
}

// Negation is the negation of a Boolean query, e.g. ¬q for an sjfBCQ q as in
// Theorem 6.3 of the paper.
type Negation struct {
	Inner Query
}

// String renders the negation as "¬(q)".
func (n *Negation) String() string { return "¬(" + n.Inner.String() + ")" }

// Eval reports whether the inner query is falsified.
func (n *Negation) Eval(inst *core.Instance) bool { return !n.Inner.Eval(inst) }

// Tautology is the always-true Boolean query; counting completions
// or valuations under it counts all completions/valuations.
type Tautology struct{}

// String returns "TRUE".
func (Tautology) String() string { return "TRUE" }

// Eval always reports true.
func (Tautology) Eval(*core.Instance) bool { return true }

// Signature returns sig(q), the set of relation names q mentions, walking
// through unions, inequalities and negations. ok is false for queries
// outside the syntactic fragment (Func and unknown implementations), whose
// signature is unknown — they must be treated as touching every relation.
func Signature(q Query) (rels map[string]bool, ok bool) {
	switch t := q.(type) {
	case Tautology:
		return map[string]bool{}, true
	case *BCQ:
		rels = make(map[string]bool, len(t.Atoms))
		for _, a := range t.Atoms {
			rels[a.Rel] = true
		}
		return rels, true
	case *UCQ:
		rels = make(map[string]bool)
		for _, d := range t.Disjuncts {
			for _, a := range d.Atoms {
				rels[a.Rel] = true
			}
		}
		return rels, true
	case *BCQNeq:
		return Signature(t.Base)
	case *Negation:
		return Signature(t.Inner)
	default:
		return nil, false
	}
}

// Func wraps an arbitrary model-checking function as a Query. It is used for
// queries outside the (U)CQ fragment, such as the existential second-order
// query of Theorem 6.4.
type Func struct {
	Name string
	F    func(*core.Instance) bool
}

// String returns the query name.
func (f *Func) String() string { return f.Name }

// Eval runs the wrapped function.
func (f *Func) Eval(inst *core.Instance) bool { return f.F(inst) }
