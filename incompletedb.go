// Package incompletedb is a from-scratch implementation of the counting
// framework of Arenas, Barceló and Monet, "Counting Problems over
// Incomplete Databases" (PODS 2020, arXiv:1912.11064).
//
// It provides:
//
//   - the incomplete-database model under the closed-world assumption:
//     naïve tables and Codd tables whose labeled nulls range over finite
//     domains, either per-null (non-uniform) or shared (uniform);
//   - Boolean conjunctive queries, unions and negations thereof, with
//     homomorphism-based model checking and the pattern relation of
//     Definition 3.1;
//   - the counting problems #Val(q) (valuations whose completion satisfies
//     q) and #Comp(q) (distinct completions satisfying q), solved exactly
//     by the paper's four polynomial-time algorithms on the tractable sides
//     of Table 1 and by guarded brute force elsewhere — the brute-force
//     sweep shards the valuation space across a worker pool
//     (CountOptions.Workers, default one worker per CPU) and supports
//     cancellation via CountOptions.Context, with results identical to a
//     serial sweep;
//   - an indexable valuation space (ValuationSpace) with O(#nulls) random
//     access, the substrate for both sharded enumeration and uniform
//     sampling;
//   - the dichotomy classifier of Table 1, including approximability
//     (Section 5) and the beyond-#P observations (Section 6);
//   - a Karp–Luby FPRAS for #Val(q) over unions of BCQs (Corollary 5.3),
//     plus Monte Carlo estimation and heuristic completion lower bounds;
//   - executable versions of every hardness reduction in the paper (package
//     internal/reductions), validated against independent counters.
//
// # Quick start
//
//	db := incompletedb.NewDatabase()
//	db.MustAddFact("S", incompletedb.Const("a"), incompletedb.Const("b"))
//	db.MustAddFact("S", incompletedb.Null(1), incompletedb.Const("a"))
//	db.MustAddFact("S", incompletedb.Const("a"), incompletedb.Null(2))
//	db.SetDomain(1, []string{"a", "b", "c"})
//	db.SetDomain(2, []string{"a", "b"})
//	q := incompletedb.MustParseQuery("S(x, x)")
//	n, method, err := incompletedb.CountValuations(db, q, nil)
//	// n = 4, the #Val(q) count of Example 2.2 / Figure 1 of the paper.
//
// All counts are exact big integers; the library is pure Go standard
// library.
package incompletedb

import (
	"context"
	"math/big"
	"math/rand"

	"github.com/incompletedb/incompletedb/internal/approx"
	"github.com/incompletedb/incompletedb/internal/classify"
	"github.com/incompletedb/incompletedb/internal/core"
	"github.com/incompletedb/incompletedb/internal/count"
	"github.com/incompletedb/incompletedb/internal/cq"
	"github.com/incompletedb/incompletedb/internal/fingerprint"
	"github.com/incompletedb/incompletedb/internal/plan"
	"github.com/incompletedb/incompletedb/internal/server"
)

// Core model types.
type (
	// Database is an incomplete database (T, dom): a naïve table with a
	// finite domain per null (or one shared domain when uniform).
	Database = core.Database
	// Instance is a complete database: the result of applying a valuation.
	Instance = core.Instance
	// Fact is an atom R(a1, ..., ak) over constants and nulls.
	Fact = core.Fact
	// Value is a fact argument: a constant or a null.
	Value = core.Value
	// NullID identifies a labeled null (positive integers).
	NullID = core.NullID
	// Valuation maps nulls to constants.
	Valuation = core.Valuation
	// ValuationSpace is an indexed, sliceable, uniformly samplable view of
	// a database's valuations; obtain one with Database.ValuationSpace.
	ValuationSpace = core.ValuationSpace
)

// Query types.
type (
	// Query is a Boolean query.
	Query = cq.Query
	// BCQ is a Boolean conjunctive query.
	BCQ = cq.BCQ
	// UCQ is a union of Boolean conjunctive queries.
	UCQ = cq.UCQ
	// Negation is the negation of a Boolean query.
	Negation = cq.Negation
	// Tautology is the always-true query.
	Tautology = cq.Tautology
	// Atom is a relational atom of a conjunctive query.
	Atom = cq.Atom
	// BCQNeq is a BCQ extended with inequality atoms x ≠ y (footnote 4 of
	// the paper).
	BCQNeq = cq.BCQNeq
)

// Classification types.
type (
	// Variant identifies one of the eight counting problems (kind ×
	// Codd × uniform).
	Variant = classify.Variant
	// ClassificationResult is the Table 1 outcome for one variant.
	ClassificationResult = classify.Result
	// Complexity is FP, #P-complete, #P-hard or open.
	Complexity = classify.Complexity
	// CountingKind selects valuations or completions.
	CountingKind = classify.CountingKind
)

// Re-exported enum values.
const (
	// Valuations selects the problem #Val(q).
	Valuations = classify.Valuations
	// Completions selects the problem #Comp(q).
	Completions = classify.Completions
	// FP marks polynomial-time computability.
	FP = classify.FP
	// SharpPComplete marks #P-completeness.
	SharpPComplete = classify.SharpPComplete
	// SharpPHard marks #P-hardness without a #P membership claim.
	SharpPHard = classify.SharpPHard
	// OpenComplexity marks the paper's open case.
	OpenComplexity = classify.Open
)

// CountOptions configures counting: the brute-force guard
// (MaxValuations), the cylinder inclusion–exclusion cap (MaxCylinders),
// the size of the worker pool brute-force sweeps shard the valuation
// space across (Workers; 0 means one worker per CPU), and an optional
// cancellation Context.
type CountOptions = count.Options

// Method identifies the algorithm used to produce a count. For rewrite
// plans it is the plan's operator signature, e.g.
// "complement(exact/theorem-3.9)".
type Method = count.Method

// Query-planning types (package internal/plan): the explainable, costed
// plan DAG the counting dispatchers compile before executing, with
// per-node decision records of every algorithm tried and the paper
// precondition that failed.
type (
	// Plan is a compiled counting problem; render it with Plan.Render,
	// serialize it with Plan.JSON.
	Plan = plan.Plan
	// PlanNode is one operator of a plan DAG.
	PlanNode = plan.Node
	// PlanDecision is one structured entry of a node's decision record.
	PlanDecision = plan.Decision
	// PlanOp identifies the algorithm (or rewrite) a plan node applies.
	PlanOp = plan.Op
)

// Model constructors, re-exported from the core model.
var (
	// NewDatabase returns an empty non-uniform incomplete database.
	NewDatabase = core.NewDatabase
	// NewUniformDatabase returns an empty uniform incomplete database.
	NewUniformDatabase = core.NewUniformDatabase
	// NewInstance returns an empty complete database.
	NewInstance = core.NewInstance
	// Const builds a constant value.
	Const = core.Const
	// Null builds a null value.
	Null = core.Null
	// ParseDatabase reads the textual database format.
	ParseDatabase = core.ParseDatabase
	// ParseDatabaseString reads the textual database format from a string.
	ParseDatabaseString = core.ParseDatabaseString
)

// Query constructors.
var (
	// ParseQuery parses a Boolean query ("R(x,y) ∧ S(x)", "A(x) | B(y)",
	// "!R(x,x)", "TRUE").
	ParseQuery = cq.Parse
	// MustParseQuery is ParseQuery that panics on error.
	MustParseQuery = cq.MustParse
	// ParseBCQ parses a Boolean conjunctive query.
	ParseBCQ = cq.ParseBCQ
	// MustParseBCQ is ParseBCQ that panics on error.
	MustParseBCQ = cq.MustParseBCQ
	// IsPatternOf decides the pattern relation of Definition 3.1.
	IsPatternOf = cq.IsPatternOf
)

// Classification functions.
var (
	// Classify determines the Table 1 complexity of one variant for an
	// sjfBCQ.
	Classify = classify.Classify
	// ClassifyAll classifies an sjfBCQ under all eight variants.
	ClassifyAll = classify.ClassifyAll
	// AllVariants lists the eight problem variants.
	AllVariants = classify.AllVariants
	// Table1 renders the dichotomy table of the paper.
	Table1 = classify.Table1
)

// CountValuations computes #Val(q)(db) exactly, picking a polynomial-time
// algorithm of the paper when one applies and guarded brute force
// otherwise. It reports which method was used.
func CountValuations(db *Database, q Query, opts *CountOptions) (*big.Int, Method, error) {
	return count.CountValuations(db, q, opts)
}

// CountCompletions computes #Comp(q)(db) exactly, picking the
// polynomial-time algorithm of Theorem 4.6 when it applies and guarded
// brute force with canonical deduplication otherwise.
func CountCompletions(db *Database, q Query, opts *CountOptions) (*big.Int, Method, error) {
	return count.CountCompletions(db, q, opts)
}

// Explain compiles (db, q, kind) into the costed, explainable plan the
// counting functions execute — which algorithm answers each sub-problem,
// everything tried before it with the precondition that failed, the
// Table 1 classification where it applies, and per-node cost estimates —
// without executing anything. The rendered plan is identical to what
// `incdb explain` and POST /v1/explain produce for the same input.
func Explain(db *Database, q Query, kind CountingKind, opts *CountOptions) (*Plan, error) {
	return count.Explain(db, q, kind, opts)
}

// ExecutePlan computes the count a plan compiled by Explain describes.
// CountValuations/CountCompletions are equivalent to Explain followed by
// ExecutePlan. db must be the same database the plan was compiled from
// (the plan's payloads embed its facts); a different database is
// rejected.
func ExecutePlan(db *Database, p *Plan, opts *CountOptions) (*big.Int, error) {
	return count.ExecutePlan(db, p, opts)
}

// CountAllCompletions counts the distinct completions of db.
func CountAllCompletions(db *Database, opts *CountOptions) (*big.Int, error) {
	return count.BruteForceAllCompletions(db, opts)
}

// TotalValuations returns the number of valuations of db (the product of
// its nulls' domain sizes).
func TotalValuations(db *Database) (*big.Int, error) {
	return db.NumValuations()
}

// EstimateValuations runs the Karp–Luby FPRAS for #Val(q)(db) with
// multiplicative error ε and failure probability δ; q must be a (union of)
// BCQ(s). The estimate carries the guarantee
// Pr(|estimate − #Val| ≤ ε·#Val) ≥ 1 − δ.
func EstimateValuations(db *Database, q Query, eps, delta float64, r *rand.Rand) (*big.Int, error) {
	return EstimateValuationsContext(context.Background(), db, q, eps, delta, r)
}

// EstimateValuationsContext is EstimateValuations with cancellation: the
// sampling loop stops with ctx's error shortly after ctx is done.
func EstimateValuationsContext(ctx context.Context, db *Database, q Query, eps, delta float64, r *rand.Rand) (*big.Int, error) {
	res, err := approx.KarpLubyValuationsContext(ctx, db, q, eps, delta, r)
	if err != nil {
		return nil, err
	}
	return res.Estimate, nil
}

// MonteCarloValuations estimates #Val(q)(db) by uniform sampling (unbiased
// but without FPRAS guarantees).
func MonteCarloValuations(db *Database, q Query, samples int, r *rand.Rand) (*big.Int, error) {
	res, err := approx.MonteCarloValuations(db, q, samples, r)
	if err != nil {
		return nil, err
	}
	return res.Estimate, nil
}

// CompletionsLowerBound samples valuations and reports the number of
// distinct satisfying completions observed — a lower bound on #Comp(q)(db)
// with no approximation guarantee (none is possible unless NP = RP;
// Theorems 5.5/5.7 of the paper).
func CompletionsLowerBound(db *Database, q Query, samples int, r *rand.Rand) (*big.Int, error) {
	return approx.CompletionsLowerBound(db, q, samples, r)
}

// IsCertain reports whether q holds in every completion of db (the
// classical certainty problem the counting problems refine).
func IsCertain(db *Database, q Query, opts *CountOptions) (bool, error) {
	return count.IsCertain(db, q, opts)
}

// IsPossible reports whether q holds in some completion of db.
func IsPossible(db *Database, q Query, opts *CountOptions) (bool, error) {
	return count.IsPossible(db, q, opts)
}

// Mu computes Libkin's relative frequency µ_k(q, T): the fraction of
// valuations over the uniform domain {1, …, k} satisfying q, using db's
// naïve table and ignoring its attached domains (Section 7 of the paper).
func Mu(db *Database, q Query, k int, opts *CountOptions) (*big.Rat, error) {
	return count.MuK(db, q, k, opts)
}

// Canonical forms and fingerprints (package internal/fingerprint): inputs
// that are identical up to null/variable renaming and fact/atom order
// share one canonical form, the basis of the counting service's result
// cache.
type (
	// FingerprintKind tags which counting problem a fingerprint caches
	// ("val", "comp", "certain", "possible").
	FingerprintKind = fingerprint.Kind
)

// Fingerprint kinds.
const (
	FingerprintVal      = fingerprint.KindVal
	FingerprintComp     = fingerprint.KindComp
	FingerprintCertain  = fingerprint.KindCertain
	FingerprintPossible = fingerprint.KindPossible
)

// CanonicalDatabase returns the canonical (null-renaming-invariant) form
// of a database: isomorphic databases — renamed nulls, reordered facts or
// domains — share one canonical form.
func CanonicalDatabase(db *Database) string {
	return fingerprint.Database(db)
}

// CanonicalQuery returns the canonical (variable-renaming-invariant) form
// of a query.
func CanonicalQuery(q Query) string {
	return fingerprint.Query(q)
}

// Fingerprint returns the cache key of (database, query, kind): a
// SHA-256 over the canonical forms.
func Fingerprint(db *Database, q Query, kind FingerprintKind) string {
	return fingerprint.Of(db, q, kind)
}

// The counting service (package internal/server): the HTTP/JSON API
// behind `incdb serve`, embeddable in other processes via NewServer and
// Server.Handler.
type (
	// Server is the caching, job-supervising counting service.
	Server = server.Server
	// ServerConfig configures a Server (cache size, valuation budget,
	// worker-pool width, job retention).
	ServerConfig = server.Config
	// ServiceRequest is one unit of API work.
	ServiceRequest = server.Request
	// ServiceResponse is the outcome of one ServiceRequest.
	ServiceResponse = server.Response
	// ServiceJob is the public state of an asynchronous counting job.
	ServiceJob = server.Job
)

// NewServer returns a counting service ready to serve; see
// Server.ListenAndServe and Server.Handler.
func NewServer(cfg ServerConfig) *Server {
	return server.New(cfg)
}
