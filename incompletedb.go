// Package incompletedb is a from-scratch implementation of the counting
// framework of Arenas, Barceló and Monet, "Counting Problems over
// Incomplete Databases" (PODS 2020, arXiv:1912.11064).
//
// It provides:
//
//   - the incomplete-database model under the closed-world assumption:
//     naïve tables and Codd tables whose labeled nulls range over finite
//     domains, either per-null (non-uniform) or shared (uniform);
//   - Boolean conjunctive queries, unions and negations thereof, with
//     homomorphism-based model checking and the pattern relation of
//     Definition 3.1;
//   - the counting problems #Val(q) (valuations whose completion satisfies
//     q) and #Comp(q) (distinct completions satisfying q), solved exactly
//     by the paper's four polynomial-time algorithms on the tractable sides
//     of Table 1 and by guarded brute force elsewhere — the brute-force
//     sweep shards the valuation space across a worker pool and supports
//     cancellation, with results identical to a serial sweep;
//   - a session-centric API (Solver, PreparedDB) that amortizes
//     canonicalization, plan construction and sweep-engine compilation
//     across many queries over one database, caches results by canonical
//     fingerprint, and streams satisfying completions through Go
//     iterators;
//   - the dichotomy classifier of Table 1, including approximability
//     (Section 5) and the beyond-#P observations (Section 6);
//   - a Karp–Luby FPRAS for #Val(q) over unions of BCQs (Corollary 5.3),
//     plus Monte Carlo estimation and heuristic completion lower bounds;
//   - executable versions of every hardness reduction in the paper (package
//     internal/reductions), validated against independent counters.
//
// # Quick start
//
//	db := incompletedb.NewDatabase()
//	db.MustAddFact("S", incompletedb.Const("a"), incompletedb.Const("b"))
//	db.MustAddFact("S", incompletedb.Null(1), incompletedb.Const("a"))
//	db.MustAddFact("S", incompletedb.Const("a"), incompletedb.Null(2))
//	db.SetDomain(1, []string{"a", "b", "c"})
//	db.SetDomain(2, []string{"a", "b"})
//
//	s := incompletedb.NewSolver()
//	pdb, err := s.Prepare(db)
//	q := incompletedb.MustParseQuery("S(x, x)")
//	res, err := pdb.Count(ctx, q, incompletedb.Valuations)
//	// res.Count = 4, the #Val(q) count of Example 2.2 / Figure 1 of the
//	// paper; res.Method and res.Plan explain how it was computed.
//
// See solver.go for the session API (Prepare once, query many times,
// stream completions) and deprecated.go for the original free functions,
// which remain as thin shims.
//
// All counts are exact big integers; the library is pure Go standard
// library.
package incompletedb

import (
	"github.com/incompletedb/incompletedb/internal/classify"
	"github.com/incompletedb/incompletedb/internal/core"
	"github.com/incompletedb/incompletedb/internal/cq"
	"github.com/incompletedb/incompletedb/internal/fingerprint"
	"github.com/incompletedb/incompletedb/internal/plan"
	"github.com/incompletedb/incompletedb/internal/server"
)

// Core model types.
type (
	// Database is an incomplete database (T, dom): a naïve table with a
	// finite domain per null (or one shared domain when uniform).
	Database = core.Database
	// Instance is a complete database: the result of applying a valuation.
	Instance = core.Instance
	// Fact is an atom R(a1, ..., ak) over constants and nulls.
	Fact = core.Fact
	// Value is a fact argument: a constant or a null.
	Value = core.Value
	// NullID identifies a labeled null (positive integers).
	NullID = core.NullID
	// Valuation maps nulls to constants.
	Valuation = core.Valuation
	// ValuationSpace is an indexed, sliceable, uniformly samplable view of
	// a database's valuations; obtain one with Database.ValuationSpace.
	ValuationSpace = core.ValuationSpace
)

// Query types.
type (
	// Query is a Boolean query.
	Query = cq.Query
	// BCQ is a Boolean conjunctive query.
	BCQ = cq.BCQ
	// UCQ is a union of Boolean conjunctive queries.
	UCQ = cq.UCQ
	// Negation is the negation of a Boolean query.
	Negation = cq.Negation
	// Tautology is the always-true query.
	Tautology = cq.Tautology
	// Atom is a relational atom of a conjunctive query.
	Atom = cq.Atom
	// BCQNeq is a BCQ extended with inequality atoms x ≠ y (footnote 4 of
	// the paper).
	BCQNeq = cq.BCQNeq
)

// Classification types.
type (
	// Variant identifies one of the eight counting problems (kind ×
	// Codd × uniform).
	Variant = classify.Variant
	// ClassificationResult is the Table 1 outcome for one variant.
	ClassificationResult = classify.Result
	// Complexity is FP, #P-complete, #P-hard or open.
	Complexity = classify.Complexity
	// CountingKind selects valuations or completions.
	CountingKind = classify.CountingKind
)

// Re-exported enum values.
const (
	// Valuations selects the problem #Val(q).
	Valuations = classify.Valuations
	// Completions selects the problem #Comp(q).
	Completions = classify.Completions
	// FP marks polynomial-time computability.
	FP = classify.FP
	// SharpPComplete marks #P-completeness.
	SharpPComplete = classify.SharpPComplete
	// SharpPHard marks #P-hardness without a #P membership claim.
	SharpPHard = classify.SharpPHard
	// OpenComplexity marks the paper's open case.
	OpenComplexity = classify.Open
)

// Query-planning types (package internal/plan): the explainable, costed
// plan DAG the counting dispatchers compile before executing, with
// per-node decision records of every algorithm tried and the paper
// precondition that failed.
type (
	// Plan is a compiled counting problem; render it with Plan.Render,
	// serialize it with Plan.JSON.
	Plan = plan.Plan
	// PlanNode is one operator of a plan DAG.
	PlanNode = plan.Node
	// PlanDecision is one structured entry of a node's decision record.
	PlanDecision = plan.Decision
	// PlanOp identifies the algorithm (or rewrite) a plan node applies.
	PlanOp = plan.Op
)

// Model constructors, re-exported from the core model.
var (
	// NewDatabase returns an empty non-uniform incomplete database.
	NewDatabase = core.NewDatabase
	// NewUniformDatabase returns an empty uniform incomplete database.
	NewUniformDatabase = core.NewUniformDatabase
	// NewInstance returns an empty complete database.
	NewInstance = core.NewInstance
	// Const builds a constant value.
	Const = core.Const
	// Null builds a null value.
	Null = core.Null
	// ParseDatabase reads the textual database format.
	ParseDatabase = core.ParseDatabase
	// ParseDatabaseString reads the textual database format from a string.
	ParseDatabaseString = core.ParseDatabaseString
)

// Query constructors.
var (
	// ParseQuery parses a Boolean query ("R(x,y) ∧ S(x)", "A(x) | B(y)",
	// "!R(x,x)", "TRUE").
	ParseQuery = cq.Parse
	// MustParseQuery is ParseQuery that panics on error.
	MustParseQuery = cq.MustParse
	// ParseBCQ parses a Boolean conjunctive query.
	ParseBCQ = cq.ParseBCQ
	// MustParseBCQ is ParseBCQ that panics on error.
	MustParseBCQ = cq.MustParseBCQ
	// IsPatternOf decides the pattern relation of Definition 3.1.
	IsPatternOf = cq.IsPatternOf
)

// Classification functions.
var (
	// Classify determines the Table 1 complexity of one variant for an
	// sjfBCQ.
	Classify = classify.Classify
	// ClassifyAll classifies an sjfBCQ under all eight variants.
	ClassifyAll = classify.ClassifyAll
	// AllVariants lists the eight problem variants.
	AllVariants = classify.AllVariants
	// Table1 renders the dichotomy table of the paper.
	Table1 = classify.Table1
)

// Canonical forms and fingerprints (package internal/fingerprint): inputs
// that are identical up to null/variable renaming and fact/atom order
// share one canonical form, the basis of the solver's result cache.
type (
	// FingerprintKind tags which counting problem a fingerprint caches
	// ("val", "comp", "certain", "possible").
	FingerprintKind = fingerprint.Kind
)

// Fingerprint kinds.
const (
	FingerprintVal      = fingerprint.KindVal
	FingerprintComp     = fingerprint.KindComp
	FingerprintCertain  = fingerprint.KindCertain
	FingerprintPossible = fingerprint.KindPossible
)

// CanonicalDatabase returns the canonical (null-renaming-invariant) form
// of a database: isomorphic databases — renamed nulls, reordered facts or
// domains — share one canonical form.
func CanonicalDatabase(db *Database) string {
	return fingerprint.Database(db)
}

// CanonicalQuery returns the canonical (variable-renaming-invariant) form
// of a query.
func CanonicalQuery(q Query) string {
	return fingerprint.Query(q)
}

// Fingerprint returns the cache key of (database, query, kind): a
// SHA-256 over the canonical forms.
func Fingerprint(db *Database, q Query, kind FingerprintKind) string {
	return fingerprint.Of(db, q, kind)
}

// The counting service (package internal/server): the HTTP/JSON API
// behind `incdb serve`, embeddable in other processes via NewServer and
// Server.Handler. The service is a thin adapter over a Solver: its result
// cache and single-flight deduplication live in the solver layer.
type (
	// Server is the caching, job-supervising counting service.
	Server = server.Server
	// ServerConfig configures a Server (cache size, valuation budget,
	// worker-pool width, job retention).
	ServerConfig = server.Config
	// ServiceRequest is one unit of API work.
	ServiceRequest = server.Request
	// ServiceResponse is the outcome of one ServiceRequest.
	ServiceResponse = server.Response
	// ServiceJob is the public state of an asynchronous counting job.
	ServiceJob = server.Job
)

// NewServer returns a counting service ready to serve; see
// Server.ListenAndServe and Server.Handler.
func NewServer(cfg ServerConfig) *Server {
	return server.New(cfg)
}
