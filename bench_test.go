package incompletedb

// Benchmark harness: one benchmark (family) per reproduced table/figure of
// the paper, as indexed in DESIGN.md, plus ablations on the substrate.
//
//	go test -bench=. -benchmem
//
// The scaling families (ValCodd / ValUniform / CompUniform, exact vs brute)
// are the repository's "figures": the exact algorithms grow polynomially in
// the instance size while the brute-force baseline grows exponentially and
// drops out.

import (
	"fmt"
	"math/big"
	"math/rand"
	"runtime"
	"testing"

	"github.com/incompletedb/incompletedb/internal/classify"
	"github.com/incompletedb/incompletedb/internal/cnf"
	"github.com/incompletedb/incompletedb/internal/core"
	"github.com/incompletedb/incompletedb/internal/count"
	"github.com/incompletedb/incompletedb/internal/cq"
	"github.com/incompletedb/incompletedb/internal/cylinder"
	"github.com/incompletedb/incompletedb/internal/graphs"
	"github.com/incompletedb/incompletedb/internal/reductions"
)

// --- E-T1: Table 1 ----------------------------------------------------------

func BenchmarkTable1Classification(b *testing.B) {
	queries := []*cq.BCQ{
		cq.MustParseBCQ("R(x, x)"),
		cq.MustParseBCQ("R(x) ∧ S(x, y) ∧ T(y)"),
		cq.MustParseBCQ("R(x, y) ∧ S(x, y)"),
		cq.MustParseBCQ("A(x, y, z) ∧ B(z, w) ∧ C(w) ∧ D(v)"),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			if _, err := classify.ClassifyAll(q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- E-F1: Figure 1 ---------------------------------------------------------

func BenchmarkFigure1Counts(b *testing.B) {
	db := core.NewDatabase()
	db.MustAddFact("S", core.Const("a"), core.Const("b"))
	db.MustAddFact("S", core.Null(1), core.Const("a"))
	db.MustAddFact("S", core.Const("a"), core.Null(2))
	db.SetDomain(1, []string{"a", "b", "c"})
	db.SetDomain(2, []string{"a", "b"})
	q := cq.MustParseBCQ("S(x, x)")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := count.BruteForceValuations(db, q, nil); err != nil {
			b.Fatal(err)
		}
		if _, err := count.BruteForceCompletions(db, q, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E-FIG-VAL-CODD: Theorem 3.7 exact vs brute -----------------------------

func coddScalingDB(n int) *core.Database {
	db := core.NewDatabase()
	for i := 0; i < n; i++ {
		a, bb := core.NullID(2*i+1), core.NullID(2*i+2)
		db.MustAddFact("R", core.Null(a), core.Null(bb))
		db.SetDomain(a, []string{"a", "b", "c"})
		db.SetDomain(bb, []string{"b", "c", "d"})
	}
	return db
}

func BenchmarkValCoddExact(b *testing.B) {
	q := cq.MustParseBCQ("R(x, x)")
	for _, n := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			db := coddScalingDB(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := count.ValuationsCodd(db, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// serialBrute pins the brute-force baselines to one worker so the scaling
// figures stay comparable to the parallel variants below.
var serialBrute = &count.Options{Workers: 1}

func BenchmarkValCoddBrute(b *testing.B) {
	q := cq.MustParseBCQ("R(x, x)")
	for _, n := range []int{2, 4, 6} { // 9^n valuations
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			db := coddScalingDB(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := count.BruteForceValuations(db, q, serialBrute); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E-FIG-VAL-UNI: Theorem 3.9 exact vs brute ------------------------------

func uniformScalingDB(n int) *core.Database {
	db := core.NewUniformDatabase([]string{"a", "b", "c"})
	for i := 0; i < n; i++ {
		db.MustAddFact("R", core.Null(core.NullID(i+1)))
		db.MustAddFact("S", core.Null(core.NullID(n+i+1)))
	}
	return db
}

func BenchmarkValUniformExact(b *testing.B) {
	q := cq.MustParseBCQ("R(x) ∧ S(x)")
	for _, n := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			db := uniformScalingDB(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := count.ValuationsUniform(db, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkValUniformBrute(b *testing.B) {
	q := cq.MustParseBCQ("R(x) ∧ S(x)")
	for _, n := range []int{2, 4, 6} { // 3^(2n) valuations
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			db := uniformScalingDB(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := count.BruteForceValuations(db, q, serialBrute); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E-FIG-COMP-UNI: Theorem 4.6 exact vs brute -----------------------------

func BenchmarkCompUniformExact(b *testing.B) {
	q := cq.MustParseBCQ("R(x) ∧ S(x)")
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			db := uniformScalingDB(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := count.CompletionsUniform(db, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCompUniformBrute(b *testing.B) {
	q := cq.MustParseBCQ("R(x) ∧ S(x)")
	for _, n := range []int{2, 4, 6} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			db := uniformScalingDB(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := count.BruteForceCompletions(db, q, serialBrute); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E-PAR: sharded brute force, serial vs worker pool ----------------------
//
// The parallel variants ride the same scaling databases as the serial
// figures above (n=6: 531441 valuations, past the engine's serial cutoff)
// and record the first perf baseline of the sharded valuation-space
// engine. On a single-core machine the workers>1 rows measure pure
// sharding overhead.

func bruteWorkerCounts() []int {
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	return counts
}

func BenchmarkValBruteParallel(b *testing.B) {
	q := cq.MustParseBCQ("R(x, x)")
	db := coddScalingDB(6) // 9^6 valuations
	for _, w := range bruteWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opts := &count.Options{Workers: w}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := count.BruteForceValuations(db, q, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCompBruteParallel(b *testing.B) {
	q := cq.MustParseBCQ("R(x) ∧ S(x)")
	db := uniformScalingDB(6) // 3^12 valuations
	for _, w := range bruteWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opts := &count.Options{Workers: w}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := count.BruteForceCompletions(db, q, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E-PRUNE: relevant-null pruning ------------------------------------------
//
// The query touches 1 of k relations; the other relations carry nulls with
// domains of size d. Relevant-null pruning factors those nulls out of the
// enumeration, so ns/op must stay flat as d grows (the full valuation
// space grows as d^8 while the enumerated space stays at 3^4 = 81).

func BenchmarkValBrutePruning(b *testing.B) {
	q := cq.MustParseBCQ("R(x, x)")
	for _, d := range []int{2, 16, 128, 1024} {
		b.Run(fmt.Sprintf("irrelevantDom=%d", d), func(b *testing.B) {
			db := core.NewDatabase()
			db.MustAddFact("R", core.Null(1), core.Null(2))
			db.MustAddFact("R", core.Null(3), core.Null(4))
			db.SetDomain(1, []string{"a", "b", "c"})
			db.SetDomain(2, []string{"a", "b", "c"})
			db.SetDomain(3, []string{"a", "b", "c"})
			db.SetDomain(4, []string{"a", "b", "c"})
			dom := make([]string, d)
			for i := range dom {
				dom[i] = fmt.Sprintf("v%d", i)
			}
			for j := 0; j < 8; j++ {
				n := core.NullID(10 + j)
				db.MustAddFact(fmt.Sprintf("Junk%d", j%4), core.Null(n))
				db.SetDomain(n, dom)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := count.BruteForceValuations(db, q, serialBrute); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E-FACTOR: independent-subquery factorization -----------------------------
//
// Two variable-disjoint hard components (20-null R-cycle, 20-null
// S-cycle over {0,1}): the joint sweep would enumerate 2^40 valuations —
// far beyond the default guard of 2^22, so the pre-planner dispatcher
// REFUSED this query — and with 20 cylinders per component the
// inclusion–exclusion route is capped out too. The factorization node
// sweeps 2×2^20 instead of 2^40 (the component spaces ADD rather than
// multiply) and answers exactly in tens of milliseconds.

func BenchmarkValFactorized(b *testing.B) {
	db := core.NewUniformDatabase([]string{"0", "1"})
	for i := 0; i < 20; i++ {
		db.MustAddFact("R", core.Null(core.NullID(1+i)), core.Null(core.NullID(1+(i+1)%20)))
		db.MustAddFact("S", core.Null(core.NullID(21+i)), core.Null(core.NullID(21+(i+1)%20)))
	}
	q := cq.MustParseBCQ("R(x, x) ∧ S(y, y)")
	// The joint space must genuinely trip the guard: that is the claim.
	if _, err := count.BruteForceValuations(db, q, nil); err == nil {
		b.Fatal("joint sweep fit the guard; grow the instance")
	}
	// Each even 20-cycle leaves exactly the 2 alternating assignments
	// unsatisfied: (2^20 − 2)^2 satisfying valuations.
	per := big.NewInt(1<<20 - 2)
	want := new(big.Int).Mul(per, per)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, _, err := count.CountValuations(db, q, nil)
		if err != nil {
			b.Fatal(err)
		}
		if n.Cmp(want) != 0 {
			b.Fatalf("count %v, want %v", n, want)
		}
	}
}

// --- E-C5.3: Karp–Luby FPRAS -------------------------------------------------

func BenchmarkKarpLuby(b *testing.B) {
	d := 10
	dom := make([]string, d)
	for i := range dom {
		dom[i] = fmt.Sprintf("v%d", i)
	}
	db := core.NewUniformDatabase(dom)
	db.MustAddFact("R", core.Null(1), core.Null(2))
	for i := 0; i < 30; i++ {
		db.MustAddFact("F", core.Null(core.NullID(10+i)))
	}
	q := cq.MustParseBCQ("R(x, x)")
	for _, eps := range []float64{0.2, 0.1, 0.05} {
		b.Run(fmt.Sprintf("eps=%v", eps), func(b *testing.B) {
			r := rand.New(rand.NewSource(1))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := EstimateValuations(db, q, eps, 0.05, r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMonteCarlo(b *testing.B) {
	db := uniformScalingDB(4)
	q := cq.MustParseBCQ("R(x) ∧ S(x)")
	r := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MonteCarloValuations(db, q, 1000, r); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E-P5.2: cylinder union --------------------------------------------------

func BenchmarkCylinderUnion(b *testing.B) {
	db := core.NewUniformDatabase([]string{"a", "b", "c"})
	db.MustAddFact("R", core.Null(1), core.Null(2))
	db.MustAddFact("R", core.Null(2), core.Null(3))
	db.MustAddFact("S", core.Null(3))
	db.MustAddFact("S", core.Const("a"))
	q := cq.MustParseBCQ("R(x, y) ∧ S(y)")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		set, err := cylinder.Build(db, q)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := set.UnionCount(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Reduction benchmarks (E-P3.4, E-P3.11, E-P4.2, E-P5.6, E-T6.3, E-T6.4) --

func BenchmarkReduction3Coloring(b *testing.B) {
	g := graphs.Random(5, 0.5, rand.New(rand.NewSource(2)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		red := reductions.ThreeColoringToVal(g)
		val, err := count.BruteForceValuations(red.DB, red.Query, nil)
		if err != nil {
			b.Fatal(err)
		}
		red.Recover(val)
	}
}

func BenchmarkReductionVertexCover(b *testing.B) {
	g := graphs.Random(4, 0.5, rand.New(rand.NewSource(2)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		red := reductions.VertexCoversToCompCodd(g)
		comp, err := count.BruteForceCompletions(red.DB, red.Query, nil)
		if err != nil {
			b.Fatal(err)
		}
		red.Recover(comp)
	}
}

func BenchmarkReductionBISLinearSystem(b *testing.B) {
	bip := graphs.RandomBipartite(2, 2, 0.5, rand.New(rand.NewSource(3)))
	oracle := func(db *core.Database, q *cq.BCQ) (*big.Int, error) {
		return count.BruteForceValuations(db, q, nil)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := reductions.BISViaLinearSystem(bip, oracle); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReductionGadget(b *testing.B) {
	g := graphs.Cycle(5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		red := reductions.ColorabilityGadget(g)
		if _, err := count.BruteForceCompletions(red.DB, red.Query, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReductionK3SAT(b *testing.B) {
	f, err := cnf.Random3CNF(4, 3, rand.New(rand.NewSource(4)))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		red, err := reductions.K3SATToCompNeg(f, 2)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := count.BruteForceCompletions(red.DB, red.Query, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReductionHamSubgraphs(b *testing.B) {
	g := graphs.Random(5, 0.6, rand.New(rand.NewSource(5)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		red, err := reductions.HamSubgraphsToVal(g, 3)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := count.BruteForceValuations(red.DB, red.Query, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E-B5: stretch/Tutte identity --------------------------------------------

func BenchmarkStretchTutte(b *testing.B) {
	g := graphs.Cycle(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sk, err := graphs.Stretch(g, 2)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := graphs.CountPseudoforestSubsets(sk); err != nil {
			b.Fatal(err)
		}
		if _, err := graphs.BicircularTutteX1(g, big.NewRat(4, 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate ablations ------------------------------------------------------

func BenchmarkQueryEval(b *testing.B) {
	inst := core.NewInstance()
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		inst.Add("R", fmt.Sprint(r.Intn(20)), fmt.Sprint(r.Intn(20)))
	}
	for i := 0; i < 50; i++ {
		inst.Add("S", fmt.Sprint(r.Intn(20)))
	}
	q := cq.MustParseBCQ("R(x, y) ∧ S(y)")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Eval(inst)
	}
}

func BenchmarkPatternContainment(b *testing.B) {
	q := cq.MustParseBCQ("A(x, y, z) ∧ B(z, w) ∧ C(w) ∧ D(v, v)")
	b.Run("generic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cq.IsPatternOf(cq.PatternPath, q)
		}
	})
	b.Run("predicate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cq.HasPathPattern(q)
		}
	})
}

func BenchmarkCompletionDedup(b *testing.B) {
	db := core.NewUniformDatabase([]string{"a", "b", "c"})
	for i := 1; i <= 8; i++ {
		db.MustAddFact("R", core.Null(core.NullID(i)))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := count.BruteForceAllCompletions(db, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValuationEnumeration(b *testing.B) {
	db := uniformScalingDB(5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		db.ForEachValuation(func(core.Valuation) bool { n++; return true })
	}
}

// --- E-MU: Libkin's µ_k through the exact dispatcher -------------------------

func BenchmarkMuK(b *testing.B) {
	db := core.NewDatabase()
	for i := 1; i <= 10; i++ {
		db.MustAddFact("R", core.Null(core.NullID(i)))
		db.MustAddFact("S", core.Null(core.NullID(10+i)))
	}
	q := cq.MustParseBCQ("R(x) ∧ S(x)")
	for _, k := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := count.MuK(db, q, k, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Extension ablations ------------------------------------------------------

func BenchmarkInequalityEval(b *testing.B) {
	inst := core.NewInstance()
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		inst.Add("R", fmt.Sprint(r.Intn(10)), fmt.Sprint(r.Intn(10)))
	}
	q := cq.MustParse("R(x, y) ∧ x ≠ y")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Eval(inst)
	}
}

func BenchmarkNegationComplementDispatch(b *testing.B) {
	db := uniformScalingDB(16)
	neg := &cq.Negation{Inner: cq.MustParseBCQ("R(x) ∧ S(x)")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := count.CountValuations(db, neg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCylinderDispatchLargeSpace(b *testing.B) {
	// 40 free binary nulls: 2^82 valuations, counted exactly through the
	// cylinder inclusion–exclusion fallback.
	db := core.NewUniformDatabase([]string{"0", "1"})
	for i := 1; i <= 40; i++ {
		db.MustAddFact("F", core.Null(core.NullID(i)), core.Null(core.NullID(40+i)))
	}
	db.MustAddFact("R", core.Null(1), core.Null(2))
	q := cq.MustParseBCQ("R(x, x)")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n, m, err := count.CountValuations(db, q, nil)
		if err != nil || m != count.MethodCylinderIE || n.Sign() <= 0 {
			b.Fatalf("method %s, err %v", m, err)
		}
	}
}
