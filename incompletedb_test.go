package incompletedb

import (
	"math/big"
	"math/rand"
	"strings"
	"testing"
)

// figure1DB builds the running example of the paper (Example 2.2).
func figure1DB() *Database {
	db := NewDatabase()
	db.MustAddFact("S", Const("a"), Const("b"))
	db.MustAddFact("S", Null(1), Const("a"))
	db.MustAddFact("S", Const("a"), Null(2))
	db.SetDomain(1, []string{"a", "b", "c"})
	db.SetDomain(2, []string{"a", "b"})
	return db
}

func TestFacadeQuickstart(t *testing.T) {
	db := figure1DB()
	q := MustParseQuery("S(x, x)")

	total, err := TotalValuations(db)
	if err != nil || total.Cmp(big.NewInt(6)) != 0 {
		t.Fatalf("total %v, err %v", total, err)
	}
	val, method, err := CountValuations(db, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if val.Cmp(big.NewInt(4)) != 0 {
		t.Fatalf("#Val = %v (method %s)", val, method)
	}
	comp, _, err := CountCompletions(db, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Cmp(big.NewInt(3)) != 0 {
		t.Fatalf("#Comp = %v", comp)
	}
	all, err := CountAllCompletions(db, nil)
	if err != nil || all.Cmp(big.NewInt(5)) != 0 {
		t.Fatalf("all completions %v, err %v", all, err)
	}
}

func TestFacadeClassify(t *testing.T) {
	q := MustParseBCQ("R(x, y)")
	rs, err := ClassifyAll(q)
	if err != nil || len(rs) != 8 {
		t.Fatalf("%v, err %v", rs, err)
	}
	r, err := Classify(Variant{Kind: Completions, Uniform: true}, q)
	if err != nil {
		t.Fatal(err)
	}
	if r.Complexity != SharpPHard {
		t.Fatalf("#Compu(R(x,y)) = %v", r.Complexity)
	}
	if !strings.Contains(Table1(), "R(x,y)") {
		t.Fatal("Table1 missing entries")
	}
}

func TestFacadeEstimators(t *testing.T) {
	db := figure1DB()
	q := MustParseQuery("S(x, x)")
	r := rand.New(rand.NewSource(1))
	est, err := EstimateValuations(db, q, 0.05, 0.05, r)
	if err != nil {
		t.Fatal(err)
	}
	diff := new(big.Int).Sub(est, big.NewInt(4))
	if diff.CmpAbs(big.NewInt(1)) > 0 {
		t.Fatalf("Karp–Luby estimate %v far from 4", est)
	}
	mc, err := MonteCarloValuations(db, q, 5000, r)
	if err != nil {
		t.Fatal(err)
	}
	diff = new(big.Int).Sub(mc, big.NewInt(4))
	if diff.CmpAbs(big.NewInt(1)) > 0 {
		t.Fatalf("Monte Carlo estimate %v far from 4", mc)
	}
	lb, err := CompletionsLowerBound(db, q, 200, r)
	if err != nil {
		t.Fatal(err)
	}
	if lb.Cmp(big.NewInt(3)) > 0 {
		t.Fatalf("lower bound %v exceeds the exact count 3", lb)
	}
}

func TestFacadeParseDatabase(t *testing.T) {
	db, err := ParseDatabaseString("uniform a b\nR(?1)\n")
	if err != nil || !db.Uniform() {
		t.Fatalf("parse failed: %v", err)
	}
	if !IsPatternOf(MustParseBCQ("R(x)"), MustParseBCQ("R(x, y) ∧ S(z)")) {
		t.Fatal("IsPatternOf re-export broken")
	}
}

func TestFacadeCertaintySemantics(t *testing.T) {
	db := figure1DB()
	q := MustParseQuery("S(x, y)")
	cert, err := IsCertain(db, q, nil)
	if err != nil || !cert {
		t.Fatalf("S(x,y) should be certain: %v %v", cert, err)
	}
	qxx := MustParseQuery("S(x, x)")
	cert, err = IsCertain(db, qxx, nil)
	if err != nil || cert {
		t.Fatalf("S(x,x) should not be certain: %v %v", cert, err)
	}
	poss, err := IsPossible(db, qxx, nil)
	if err != nil || !poss {
		t.Fatalf("S(x,x) should be possible: %v %v", poss, err)
	}
	// Over the Figure 1 table, µ_k(S(x,x)) = 0: the domain {1..k} is
	// disjoint from the constants a, b, so no diagonal fact can arise.
	mu, err := Mu(db, qxx, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mu.Sign() != 0 {
		t.Fatalf("µ_3 over the Figure 1 table = %v, want 0", mu)
	}
	// Over the all-null table {S(⊥1,⊥2)}, µ_k(S(x,x)) = 1/k.
	free := NewDatabase()
	free.MustAddFact("S", Null(1), Null(2))
	mu, err = Mu(free, qxx, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mu.Cmp(big.NewRat(1, 3)) != 0 {
		t.Fatalf("µ_3 = %v, want 1/3", mu)
	}
}

// TestFacadeExplain: the root EXPLAIN API — a plan compiles without
// executing, ExecutePlan reproduces the dispatcher's count, and the
// rendered text is deterministic.
func TestFacadeExplain(t *testing.T) {
	db := figure1DB()
	q := MustParseQuery("S(x, x)")
	p, err := Explain(db, q, Valuations, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Root == nil || p.Method() == "" {
		t.Fatalf("empty plan: %+v", p)
	}
	if !strings.Contains(p.Render(), "plan #Val(S(x, x))") {
		t.Errorf("rendered plan:\n%s", p.Render())
	}
	if p.Render() != p.JSON().Text {
		t.Error("JSON text differs from Render")
	}
	n, err := ExecutePlan(db, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	direct, method, err := CountValuations(db, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n.Cmp(direct) != 0 {
		t.Fatalf("ExecutePlan %v, CountValuations %v", n, direct)
	}
	if string(method) != p.Method() {
		t.Errorf("method mismatch: %q vs %q", method, p.Method())
	}
	// Completions plan, too.
	pc, err := Explain(db, q, Completions, nil)
	if err != nil {
		t.Fatal(err)
	}
	nc, err := ExecutePlan(db, pc, nil)
	if err != nil || nc.Cmp(big.NewInt(3)) != 0 {
		t.Fatalf("comp plan executed to %v, err %v", nc, err)
	}
}

func TestFacadeInequalityQuery(t *testing.T) {
	db := NewUniformDatabase([]string{"a", "b"})
	db.MustAddFact("R", Null(1), Null(2))
	q := MustParseQuery("R(x, y) ∧ x ≠ y")
	if _, ok := q.(*BCQNeq); !ok {
		t.Fatalf("expected BCQNeq, got %T", q)
	}
	n, _, err := CountValuations(db, q, nil)
	if err != nil || n.Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("count %v, err %v", n, err)
	}
}
